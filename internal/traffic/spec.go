// Package traffic is the trace-driven load layer: it turns a declarative
// JSON spec — cohorts of fleets with diurnal ramps and superimposed
// bursts — into a deterministic schedule of shard submissions, drives
// them at a collector through runner.HTTPSink, records every submission
// into a versioned CRC-framed trace file (DESIGN.md §15), and replays a
// captured trace bit-for-bit, at recorded speed or time-warped.
//
// Everything downstream of a (Spec, Seed) pair is deterministic: the
// arrival schedule, the shard payload bytes, and the trace file written
// from them are all bit-identical across runs of the same build. That is
// the contract the replay-determinism CI job enforces.
package traffic

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"profileme/internal/workload"
)

// SpecVersion is the traffic-spec schema version this build reads and
// writes.
const SpecVersion = 1

// ErrBadSpec reports a spec that fails validation; the message names the
// offending field.
var ErrBadSpec = errors.New("traffic: bad spec")

// Spec declares a multi-period arrival process: one seeded RNG drives
// every cohort's thinned Poisson schedule, every payload's data layout,
// and every sampling unit's interval draws, so the whole offered load is
// reproducible from this one document.
type Spec struct {
	// Version is the spec schema version (SpecVersion).
	Version int `json:"version"`
	// Seed is the master seed; every derived RNG (per-cohort arrivals,
	// per-shard data layouts, sampling units) mixes from it.
	Seed uint64 `json:"seed"`
	// DurationS is the modeled duration of the arrival process in
	// seconds. Wall-clock duration is DurationS / speed.
	DurationS float64 `json:"duration_s"`
	// Interval is the mean sampling interval shared by every cohort.
	// It is spec-global because the collector's aggregate refuses
	// mixed-interval merges (409 config-mismatch): cohorts may vary
	// seeds, scales and buffer depths, never the interval.
	Interval float64 `json:"interval"`
	// Cohorts are the fleets offering load (at least one).
	Cohorts []Cohort `json:"cohorts"`
}

// Cohort is one fleet: a benchmark population submitting shard profiles
// with its own rate shape and sampling configuration.
type Cohort struct {
	// Name tags the cohort in trace records and reports (unique).
	Name string `json:"name"`
	// Bench names a workload.Suite benchmark.
	Bench string `json:"bench"`
	// Scale is the benchmark build scale (dynamic-instruction target).
	Scale int `json:"scale"`
	// Shards is the cohort's pool of distinct shard payloads; arrivals
	// draw from the pool uniformly, so the same shard id resubmitting
	// (and deduping server-side) is part of the modeled load.
	Shards int `json:"shards"`
	// BaseRate is the baseline arrival rate in submissions per modeled
	// second.
	BaseRate float64 `json:"base_rate"`
	// BufferDepth is the sampling unit's buffer depth (default 8).
	BufferDepth int `json:"buffer_depth,omitempty"`
	// Diurnal optionally modulates BaseRate sinusoidally.
	Diurnal *Diurnal `json:"diurnal,omitempty"`
	// Bursts optionally superimpose load spikes.
	Bursts []Burst `json:"bursts,omitempty"`
}

// Diurnal is a sinusoidal rate modulation: rate(t) scales by
// 1 + Amplitude*sin(2π(t-PhaseS)/PeriodS), a compressed day/night ramp.
type Diurnal struct {
	// Amplitude is the modulation depth in [0, 1].
	Amplitude float64 `json:"amplitude"`
	// PeriodS is the modulation period in modeled seconds.
	PeriodS float64 `json:"period_s"`
	// PhaseS shifts the cycle so cohorts can peak at different times.
	PhaseS float64 `json:"phase_s,omitempty"`
}

// Burst adds RatePerS extra submissions per modeled second during
// [AtS, AtS+DurS) — a deploy wave, a thundering herd.
type Burst struct {
	AtS      float64 `json:"at_s"`
	DurS     float64 `json:"dur_s"`
	RatePerS float64 `json:"rate_per_s"`
}

// Validate checks the spec against the schema and the collector's merge
// constraints. Every failure wraps ErrBadSpec.
func (sp *Spec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
	}
	if sp.Version != SpecVersion {
		return bad("version %d (this build reads v%d)", sp.Version, SpecVersion)
	}
	if !(sp.DurationS > 0) || math.IsInf(sp.DurationS, 0) {
		return bad("duration_s %v must be a positive finite number", sp.DurationS)
	}
	if !(sp.Interval > 0) {
		return bad("interval %v must be positive", sp.Interval)
	}
	if len(sp.Cohorts) == 0 {
		return bad("no cohorts")
	}
	seen := make(map[string]bool, len(sp.Cohorts))
	for i := range sp.Cohorts {
		c := &sp.Cohorts[i]
		if c.Name == "" {
			return bad("cohort %d has no name", i)
		}
		if seen[c.Name] {
			return bad("duplicate cohort name %q", c.Name)
		}
		seen[c.Name] = true
		if _, ok := workload.ByName(c.Bench); !ok {
			return bad("cohort %q: unknown benchmark %q", c.Name, c.Bench)
		}
		if c.Scale <= 0 {
			return bad("cohort %q: scale %d must be positive", c.Name, c.Scale)
		}
		if c.Shards <= 0 {
			return bad("cohort %q: shards %d must be positive", c.Name, c.Shards)
		}
		if !(c.BaseRate >= 0) || math.IsInf(c.BaseRate, 0) {
			return bad("cohort %q: base_rate %v must be finite and >= 0", c.Name, c.BaseRate)
		}
		if c.BufferDepth < 0 {
			return bad("cohort %q: buffer_depth %d must be >= 0", c.Name, c.BufferDepth)
		}
		if d := c.Diurnal; d != nil {
			if d.Amplitude < 0 || d.Amplitude > 1 {
				return bad("cohort %q: diurnal amplitude %v outside [0, 1]", c.Name, d.Amplitude)
			}
			if !(d.PeriodS > 0) {
				return bad("cohort %q: diurnal period_s %v must be positive", c.Name, d.PeriodS)
			}
		}
		for j, b := range c.Bursts {
			if b.AtS < 0 || !(b.DurS > 0) || !(b.RatePerS >= 0) || math.IsInf(b.RatePerS, 0) {
				return bad("cohort %q: burst %d (at_s=%v dur_s=%v rate_per_s=%v) malformed",
					c.Name, j, b.AtS, b.DurS, b.RatePerS)
			}
		}
		if c.peakRate() <= 0 {
			return bad("cohort %q offers no load (zero rate everywhere)", c.Name)
		}
	}
	return nil
}

// rateAt is the cohort's instantaneous arrival rate at modeled time t
// (seconds): the diurnally-modulated baseline plus every active burst.
func (c *Cohort) rateAt(t float64) float64 {
	r := c.BaseRate
	if d := c.Diurnal; d != nil {
		r *= 1 + d.Amplitude*math.Sin(2*math.Pi*(t-d.PhaseS)/d.PeriodS)
	}
	for _, b := range c.Bursts {
		if t >= b.AtS && t < b.AtS+b.DurS {
			r += b.RatePerS
		}
	}
	if r < 0 {
		r = 0
	}
	return r
}

// peakRate upper-bounds rateAt over all t — the thinning envelope.
func (c *Cohort) peakRate() float64 {
	r := c.BaseRate
	if d := c.Diurnal; d != nil {
		r *= 1 + d.Amplitude
	}
	for _, b := range c.Bursts {
		r += b.RatePerS
	}
	return r
}

// ParseSpec decodes and validates a JSON spec document. Unknown fields
// are rejected — a typo'd knob must fail loudly, not silently offer the
// default load.
func ParseSpec(data []byte) (*Spec, error) {
	var sp Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// EncodeSpec renders the spec as canonical indented JSON — the byte
// representation stored in trace headers, stable for a given Spec value.
func EncodeSpec(sp *Spec) ([]byte, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(sp, "", "  ")
}
