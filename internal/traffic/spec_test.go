package traffic

import (
	"errors"
	"reflect"
	"testing"
)

// testSpec is a small diurnal+burst two-cohort spec; scales are tiny so
// Materialize stays test-fast.
func testSpec() *Spec {
	return &Spec{
		Version:   SpecVersion,
		Seed:      42,
		DurationS: 60,
		Interval:  64,
		Cohorts: []Cohort{
			{
				Name: "steady", Bench: "compress", Scale: 20000, Shards: 4,
				BaseRate: 0.5,
				Diurnal:  &Diurnal{Amplitude: 0.8, PeriodS: 60},
			},
			{
				Name: "bursty", Bench: "m88ksim", Scale: 20000, Shards: 3,
				BaseRate: 0.2,
				Bursts:   []Burst{{AtS: 20, DurS: 10, RatePerS: 3}},
			},
		},
	}
}

func TestSpecValidation(t *testing.T) {
	mutate := func(f func(*Spec)) *Spec {
		sp := testSpec()
		f(sp)
		return sp
	}
	bad := []struct {
		name string
		sp   *Spec
	}{
		{"version", mutate(func(sp *Spec) { sp.Version = 99 })},
		{"duration", mutate(func(sp *Spec) { sp.DurationS = 0 })},
		{"interval", mutate(func(sp *Spec) { sp.Interval = -1 })},
		{"no-cohorts", mutate(func(sp *Spec) { sp.Cohorts = nil })},
		{"dup-name", mutate(func(sp *Spec) { sp.Cohorts[1].Name = "steady" })},
		{"bench", mutate(func(sp *Spec) { sp.Cohorts[0].Bench = "nope" })},
		{"scale", mutate(func(sp *Spec) { sp.Cohorts[0].Scale = 0 })},
		{"shards", mutate(func(sp *Spec) { sp.Cohorts[0].Shards = 0 })},
		{"amplitude", mutate(func(sp *Spec) { sp.Cohorts[0].Diurnal.Amplitude = 1.5 })},
		{"burst", mutate(func(sp *Spec) { sp.Cohorts[1].Bursts[0].DurS = 0 })},
		{"no-load", mutate(func(sp *Spec) {
			sp.Cohorts[1].BaseRate = 0
			sp.Cohorts[1].Bursts = nil
		})},
	}
	for _, tc := range bad {
		if err := tc.sp.Validate(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: want ErrBadSpec, got %v", tc.name, err)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"version":1,"seed":1,"duration_s":1,"interval":64,
		"cohorts":[{"name":"a","bench":"compress","scale":1000,"shards":1,"base_rte":1}]}`))
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("typo'd field: want ErrBadSpec, got %v", err)
	}
}

func TestScheduleDeterministicAndShaped(t *testing.T) {
	sp := testSpec()
	s1, err := sp.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := testSpec().Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same spec produced different schedules")
	}
	if len(s1) < 20 {
		t.Fatalf("only %d arrivals in 60 modeled seconds", len(s1))
	}
	for i := 1; i < len(s1); i++ {
		if s1[i].OffsetUS < s1[i-1].OffsetUS {
			t.Fatal("schedule not sorted by offset")
		}
	}

	// The burst window [20s, 30s) must be visibly denser for the bursty
	// cohort than an equal-length quiet window.
	inWindow := func(cohort string, lo, hi int64) int {
		n := 0
		for _, a := range s1 {
			if a.Cohort == cohort && a.OffsetUS >= lo && a.OffsetUS < hi {
				n++
			}
		}
		return n
	}
	burst := inWindow("bursty", 20_000_000, 30_000_000)
	quiet := inWindow("bursty", 40_000_000, 50_000_000)
	if burst <= quiet+3 {
		t.Fatalf("burst window %d arrivals vs quiet %d: burst invisible", burst, quiet)
	}

	// A different seed must move the arrivals.
	other := testSpec()
	other.Seed = 43
	s3, err := other.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seed produced the identical schedule")
	}
}

func TestMaterializeDeterministicPayloads(t *testing.T) {
	sp := testSpec()
	// Shrink: payload determinism needs only one cohort and few shards.
	sp.Cohorts = sp.Cohorts[:1]
	sp.Cohorts[0].Shards = 2
	p1, err := sp.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sp.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	pool1, pool2 := p1["steady"], p2["steady"]
	if len(pool1) != 2 || len(pool2) != 2 {
		t.Fatalf("pool sizes %d/%d", len(pool1), len(pool2))
	}
	for i := range pool1 {
		if pool1[i].Shard != pool2[i].Shard {
			t.Fatalf("shard id mismatch at %d", i)
		}
		if string(pool1[i].Body) != string(pool2[i].Body) {
			t.Fatalf("shard %s: payload bytes differ across materializations", pool1[i].Shard)
		}
		if pool1[i].Captured == 0 {
			t.Fatalf("shard %s captured nothing", pool1[i].Shard)
		}
	}
	// Distinct shards must carry distinct payloads (different data
	// seeds and sampling seeds).
	if string(pool1[0].Body) == string(pool1[1].Body) {
		t.Fatal("distinct shards produced identical payloads")
	}
}
