package traffic

import (
	"fmt"
	"math"
	"sort"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/ingest"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/stats"
	"profileme/internal/workload"
)

// Arrival is one scheduled submission: which cohort, which shard of its
// pool, and when (microseconds of modeled time from trace start).
type Arrival struct {
	OffsetUS int64
	Cohort   string
	Shard    int // index into the cohort's payload pool
}

// Schedule expands the spec into the full arrival list, sorted by
// offset. Each cohort's arrivals come from a thinned non-homogeneous
// Poisson process: exponential candidate gaps at the cohort's peak rate,
// accepted with probability rate(t)/peak. All randomness derives from
// Spec.Seed, so the same spec always yields the identical schedule.
func (sp *Spec) Schedule() ([]Arrival, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	var all []Arrival
	for ci := range sp.Cohorts {
		c := &sp.Cohorts[ci]
		rng := stats.NewRNG(mixSeed(sp.Seed, uint64(ci), 0x5c4ed01e))
		peak := c.peakRate()
		t := 0.0
		for {
			u := rng.Float64()
			t += -math.Log(1-u) / peak
			if t >= sp.DurationS {
				break
			}
			accept := rng.Float64()
			shard := rng.Intn(c.Shards)
			if accept*peak > c.rateAt(t) {
				continue // thinned: below the instantaneous rate curve
			}
			all = append(all, Arrival{
				OffsetUS: int64(t * 1e6),
				Cohort:   c.Name,
				Shard:    shard,
			})
		}
	}
	// Merge cohorts into one timeline; ties break deterministically by
	// cohort name then shard so the schedule is a pure function of the
	// spec.
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].OffsetUS != all[j].OffsetUS {
			return all[i].OffsetUS < all[j].OffsetUS
		}
		if all[i].Cohort != all[j].Cohort {
			return all[i].Cohort < all[j].Cohort
		}
		return all[i].Shard < all[j].Shard
	})
	return all, nil
}

// Payload is one materialized shard submission: the profile database a
// simulated fleet member would deliver, plus its encoded wire bytes.
type Payload struct {
	// Shard is the tier-wide shard id ("<cohort>/s<idx>").
	Shard string
	// DB is the shard's profile database (what HTTPSink submits).
	DB *profile.DB
	// Body is ingest.EncodeSubmit(Shard, DB) — the bytes a trace
	// records, identical to what the sink puts on the wire.
	Body []byte
	// Captured is DB.Samples()+DB.Lost(): the shard's weight in the
	// tier's conservation sum.
	Captured uint64
}

// Materialize builds every cohort's payload pool by running the real
// simulator: each shard is one pipeline run of the cohort's benchmark
// with a ProfileMe unit attached, data layout and sampling seeds derived
// from (Spec.Seed, cohort, shard). Returns pools keyed by cohort name.
//
// Cost scales with Σ cohorts(Shards × Scale); specs meant for quick
// tests should keep scales small.
func (sp *Spec) Materialize() (map[string][]Payload, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	pools := make(map[string][]Payload, len(sp.Cohorts))
	for ci := range sp.Cohorts {
		c := &sp.Cohorts[ci]
		bench, _ := workload.ByName(c.Bench) // existence validated above
		pool := make([]Payload, 0, c.Shards)
		for si := 0; si < c.Shards; si++ {
			db, err := buildShard(sp, c, bench, ci, si)
			if err != nil {
				return nil, fmt.Errorf("traffic: cohort %q shard %d: %w", c.Name, si, err)
			}
			shardID := fmt.Sprintf("%s/s%03d", c.Name, si)
			body, err := ingest.EncodeSubmit(shardID, db)
			if err != nil {
				return nil, fmt.Errorf("traffic: cohort %q shard %d: %w", c.Name, si, err)
			}
			pool = append(pool, Payload{
				Shard:    shardID,
				DB:       db,
				Body:     body,
				Captured: db.Samples() + db.Lost(),
			})
		}
		pools[c.Name] = pool
	}
	return pools, nil
}

// buildShard runs one simulated fleet member: pipeline + ProfileMe unit,
// loss recorded for conservation, exactly the wiring pmsim uses.
func buildShard(sp *Spec, c *Cohort, bench workload.Benchmark, ci, si int) (*profile.DB, error) {
	dataSeed := mixSeed(sp.Seed, uint64(ci), uint64(si)*2+1)
	prog := bench.BuildSeeded(c.Scale, dataSeed)
	ccfg := cpu.DefaultConfig()
	depth := c.BufferDepth
	if depth == 0 {
		depth = 8
	}
	unit, err := core.NewUnit(core.Config{
		MeanInterval: sp.Interval,
		BufferDepth:  depth,
		CountMode:    core.CountInstructions,
		IntervalMode: core.IntervalGeometric,
		Seed:         mixSeed(sp.Seed, uint64(ci), uint64(si)*2+2),
	})
	if err != nil {
		return nil, err
	}
	db := profile.NewDB(sp.Interval, 0, ccfg.SustainedIssueWidth)
	pipe, err := cpu.New(prog, sim.NewMachineSource(sim.New(prog), 0), ccfg)
	if err != nil {
		return nil, err
	}
	pipe.AttachProfileMe(unit, db.Handler())
	if _, err := pipe.Run(0); err != nil {
		return nil, err
	}
	st := unit.Stats()
	db.RecordLoss(st.SamplesDropped + st.SamplesOverwritten)
	return db, nil
}

// mixSeed derives an independent stream seed from the master seed and
// two indices (splitmix64-style finalization, matching stats.NewRNG's
// own seeding discipline).
func mixSeed(master, a, b uint64) uint64 {
	z := master ^ (a+1)*0x9e3779b97f4a7c15 ^ (b+1)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}
