package traffic

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
)

// driveTrace materializes the test spec and writes its trace to a
// buffer, record-only (nil sink).
func driveTrace(t *testing.T, sp *Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Spec: sp, Source: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drive(context.Background(), sp, nil, w, Options{}); err != nil {
		t.Fatal(err)
	}
	if w.Count() == 0 {
		t.Fatal("trace has no records")
	}
	return buf.Bytes()
}

func smallSpec() *Spec {
	sp := testSpec()
	sp.DurationS = 20
	sp.Cohorts[0].Shards = 2
	sp.Cohorts[1].Shards = 2
	return sp
}

func TestTraceRoundTripAndBitIdentical(t *testing.T) {
	sp := smallSpec()
	b1 := driveTrace(t, sp)
	b2 := driveTrace(t, smallSpec())
	if !bytes.Equal(b1, b2) {
		t.Fatal("same spec + same seed did not produce a bit-identical trace file")
	}

	meta, recs, err := ReadAll(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Spec == nil || meta.Spec.Seed != sp.Seed || meta.Source != "test" {
		t.Fatalf("meta did not round-trip: %+v", meta)
	}
	if len(recs) == 0 {
		t.Fatal("no records read back")
	}
	sched, err := sp.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sched) {
		t.Fatalf("%d records != %d scheduled arrivals", len(recs), len(sched))
	}
	for i := range recs {
		if recs[i].OffsetUS != sched[i].OffsetUS || recs[i].Cohort != sched[i].Cohort {
			t.Fatalf("record %d (%+v) does not match schedule (%+v)", i, recs[i], sched[i])
		}
		if len(recs[i].Body) == 0 || recs[i].Shard == "" {
			t.Fatalf("record %d incomplete", i)
		}
	}
}

func TestTraceTornTail(t *testing.T) {
	full := driveTrace(t, smallSpec())
	_, whole, err := ReadAll(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the final record: every earlier record must
	// come back intact, then the typed truncation error.
	torn := full[:len(full)-7]
	meta, recs, err := ReadAll(bytes.NewReader(torn))
	if !errors.Is(err, ErrTraceTruncated) {
		t.Fatalf("torn tail: want ErrTraceTruncated, got %v", err)
	}
	if meta.Spec == nil {
		t.Fatal("torn tail lost the meta block")
	}
	if len(recs) != len(whole)-1 {
		t.Fatalf("recovered %d of %d records before the tear", len(recs), len(whole))
	}
}

func TestTraceBitFlip(t *testing.T) {
	full := driveTrace(t, smallSpec())
	// Flip one bit inside the last record's payload (well past the
	// header): the reader must answer ErrTraceCorrupt, not garbage.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-20] ^= 0x40
	_, _, err := ReadAll(bytes.NewReader(flipped))
	if !errors.Is(err, ErrTraceCorrupt) {
		t.Fatalf("bit flip: want ErrTraceCorrupt, got %v", err)
	}
}

func TestTraceVersionSkewAndBadMagic(t *testing.T) {
	full := driveTrace(t, smallSpec())
	skewed := append([]byte(nil), full...)
	skewed[4] = 99 // version field
	if _, err := NewReader(bytes.NewReader(skewed)); !errors.Is(err, ErrTraceVersionSkew) {
		t.Fatalf("version skew: want ErrTraceVersionSkew, got %v", err)
	}
	notTrace := []byte("PMDBxxxxxxxxxxxxxxxx")
	if _, err := NewReader(bytes.NewReader(notTrace)); !errors.Is(err, ErrTraceCorrupt) {
		t.Fatalf("bad magic: want ErrTraceCorrupt, got %v", err)
	}
	if _, err := NewReader(bytes.NewReader(full[:6])); !errors.Is(err, ErrTraceTruncated) {
		t.Fatalf("short header: want ErrTraceTruncated, got %v", err)
	}
}

// FuzzTraceDecode holds the reader to its contract on arbitrary bytes:
// typed errors or clean decode, never a panic, never unbounded
// allocation.
func FuzzTraceDecode(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Source: "fuzz"})
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Append(Record{OffsetUS: 10, Cohort: "c", Shard: "c/s000", Body: []byte("xx")}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("PMTF"))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[9] = 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrTraceCorrupt) && !errors.Is(err, ErrTraceTruncated) && !errors.Is(err, ErrTraceVersionSkew) {
				t.Fatalf("untyped header error: %v", err)
			}
			return
		}
		for {
			_, err := tr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrTraceCorrupt) && !errors.Is(err, ErrTraceTruncated) {
					t.Fatalf("untyped record error: %v", err)
				}
				return
			}
		}
	})
}
