package traffic

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"profileme/internal/cpu"
	"profileme/internal/ingest"
	"profileme/internal/runner"
	"profileme/internal/server"
)

// collector is one fresh in-process pmsimd: service + HTTP edge.
type collector struct {
	svc *ingest.Service
	ts  *httptest.Server
}

func newCollector(t *testing.T, interval float64) *collector {
	t.Helper()
	svc, err := ingest.NewService(ingest.Config{
		QueueDepth: 4,
		Interval:   interval,
		Width:      cpu.DefaultConfig().SustainedIssueWidth,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(server.New(server.Config{Instance: "c0"}, svc).Handler())
	t.Cleanup(ts.Close)
	return &collector{svc: svc, ts: ts}
}

// aggregateBytes drains the collector and serializes its aggregate.
func (c *collector) aggregateBytes(t *testing.T) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.svc.Aggregate().Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReplayDeterminism is the PR's core acceptance gate: record a
// diurnal+burst trace, replay it twice against fresh collector
// instances, and require bit-identical final aggregate bytes and
// identical conservation sums. The shard-deduped, order-independent
// merge makes the aggregate a pure function of the trace once every
// record is accepted; this test holds the whole stack to that.
func TestReplayDeterminism(t *testing.T) {
	sp := smallSpec()
	traceBytes := driveTrace(t, sp)
	_, recs, err := ReadAll(bytes.NewReader(traceBytes))
	if err != nil {
		t.Fatal(err)
	}

	opts := Options{Speed: 0, MaxAttempts: 20, Backoff: 5 * time.Millisecond}
	run := func() ([]byte, *Report) {
		c := newCollector(t, sp.Interval)
		rep, err := Replay(context.Background(), recs, runner.NewHTTPSink(c.ts.URL), opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed != 0 {
			t.Fatalf("%d records failed delivery", rep.Failed)
		}
		if rep.Accepted != len(recs) {
			t.Fatalf("accepted %d of %d", rep.Accepted, len(recs))
		}
		return c.aggregateBytes(t), rep
	}

	agg1, rep1 := run()
	agg2, rep2 := run()
	if !bytes.Equal(agg1, agg2) {
		t.Fatal("replaying the same trace produced different aggregate bytes")
	}
	if rep1.CapturedSum != rep2.CapturedSum || rep1.CapturedSum == 0 {
		t.Fatalf("conservation sums differ or empty: %d vs %d", rep1.CapturedSum, rep2.CapturedSum)
	}

	// Conservation: the aggregate's captured total must equal the sum
	// over distinct offered shards (duplicate arrivals dedupe, refusals
	// that later succeed reverse their loss).
	c3 := newCollector(t, sp.Interval)
	rep3, err := Replay(context.Background(), recs, runner.NewHTTPSink(c3.ts.URL), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Failed != 0 {
		t.Fatalf("%d records failed delivery", rep3.Failed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c3.svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	agg := c3.svc.Aggregate()
	got := agg.Samples() + agg.Lost()
	if got != rep3.CapturedSum {
		t.Fatalf("aggregate captured %d != offered distinct-shard sum %d", got, rep3.CapturedSum)
	}
}

// TestDriveSubmitsAndRecords drives the spec live (sink + recorder in
// one pass) and checks the trace matches what the collector admitted.
func TestDriveSubmitsAndRecords(t *testing.T) {
	sp := smallSpec()
	c := newCollector(t, sp.Interval)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Spec: sp, Source: "test"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Drive(context.Background(), sp, runner.NewHTTPSink(c.ts.URL), w,
		Options{Speed: 0, MaxAttempts: 20, Backoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Accepted != rep.Records {
		t.Fatalf("drive: %+v", rep)
	}
	if w.Count() != rep.Records {
		t.Fatalf("recorded %d of %d submissions", w.Count(), rep.Records)
	}
	// The trace must be exactly the record-only trace: recording with a
	// live sink must not perturb the captured bytes.
	if !bytes.Equal(buf.Bytes(), driveTrace(t, smallSpec())) {
		t.Fatal("live-driven trace differs from record-only trace")
	}
	agg := c.aggregateBytes(t)
	if len(agg) == 0 {
		t.Fatal("empty aggregate")
	}
}

// TestReplaySpeedWarp checks -speed actually warps pacing: a 2-record
// trace 300ms apart replayed at 10x completes well under recorded time,
// and at speed 1 takes at least the recorded gap.
func TestReplaySpeedWarp(t *testing.T) {
	sp := smallSpec()
	pools, err := sp.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	p := pools["steady"][0]
	recs := []Record{
		{OffsetUS: 0, Cohort: "steady", Shard: p.Shard, Body: p.Body},
		{OffsetUS: 300_000, Cohort: "steady", Shard: p.Shard, Body: p.Body},
	}
	c := newCollector(t, sp.Interval)
	sink := runner.NewHTTPSink(c.ts.URL)
	opts := Options{Speed: 10, MaxAttempts: 20, Backoff: 5 * time.Millisecond}
	start := time.Now()
	if _, err := Replay(context.Background(), recs, sink, opts); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 200*time.Millisecond {
		t.Fatalf("10x replay of a 300ms trace took %v", el)
	}
	opts.Speed = 1
	start = time.Now()
	if _, err := Replay(context.Background(), recs, sink, opts); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 250*time.Millisecond {
		t.Fatalf("1x replay of a 300ms trace took only %v", el)
	}
}

// TestRecordingSinkCapturesOfferedLoad exercises the pmsim -record path:
// submissions tee into a trace and still reach the inner sink; the
// captured bodies replay cleanly.
func TestRecordingSinkCapturesOfferedLoad(t *testing.T) {
	sp := smallSpec()
	pools, err := sp.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	c := newCollector(t, sp.Interval)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Source: "pmsim"})
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRecordingSink(runner.NewHTTPSink(c.ts.URL), w, "steady")
	ctx := context.Background()
	for _, p := range pools["steady"] {
		if err := rs.Submit(ctx, p.Shard, p.DB); err != nil {
			t.Fatal(err)
		}
	}
	meta, recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Source != "pmsim" || len(recs) != len(pools["steady"]) {
		t.Fatalf("capture: source %q, %d records", meta.Source, len(recs))
	}
	c2 := newCollector(t, sp.Interval)
	rep, err := Replay(ctx, recs, runner.NewHTTPSink(c2.ts.URL),
		Options{Speed: 0, MaxAttempts: 20, Backoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("replay of captured trace: %+v", rep)
	}
}
