package traffic

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The trace file rides the repo's envelope conventions (DESIGN.md §7,
// §9, §12): a magic+version header, length-prefixed CRC32-C-framed
// records, typed decode errors, and allocation caps on every declared
// length.
//
//	header: "PMTF" | version u32 | meta len u32 | meta JSON | crc32c(meta) u32
//	record: payload len u32 | crc32c(payload) u32 | payload JSON
//
// The meta block carries the generating Spec (nil for live captures), so
// a trace is self-describing: describe/replay need no side files. A
// clean end of file falls exactly on a record boundary; anything else —
// a torn tail from a crashed recorder — reads back as ErrTruncated after
// every complete record has been delivered, never as a panic or a
// garbage record.
const (
	traceMagic   = "PMTF"
	traceVersion = 1
	// traceHeaderBytes: magic[4] + version u32 + meta len u32.
	traceHeaderBytes = 12
	// recFrameBytes: payload len u32 + payload CRC32-C u32.
	recFrameBytes = 8
	// maxMetaBytes / maxRecordBytes cap declared lengths so a forged
	// field cannot drive allocation (a submission is bounded by the
	// collector's 8 MiB body cap; 64 MiB leaves headroom).
	maxMetaBytes   = 1 << 20
	maxRecordBytes = 1 << 26
)

// Typed trace-decode failures, mirroring profile.Err* semantics.
var (
	// ErrTraceCorrupt: the bytes are not a trace — bad magic, checksum
	// mismatch, undecodable record, or an impossible declared length.
	ErrTraceCorrupt = errors.New("traffic: trace corrupt")
	// ErrTraceTruncated: the stream ended inside a header or record (a
	// torn tail); records before the tear were delivered intact.
	ErrTraceTruncated = errors.New("traffic: trace truncated")
	// ErrTraceVersionSkew: a well-formed trace written by a different
	// format version.
	ErrTraceVersionSkew = errors.New("traffic: trace version skew")
)

var traceCRC = crc32.MakeTable(crc32.Castagnoli)

// Meta is the trace header block.
type Meta struct {
	// Spec is the generating spec; nil for live captures (pmsim -record,
	// collector/router -record), which have no declarative source.
	Spec *Spec `json:"spec,omitempty"`
	// Source names the producer: "pmtraffic", "pmsim", "pmsimd",
	// "pmrouter", "pmtraffic-record".
	Source string `json:"source"`
}

// Record is one captured submission.
type Record struct {
	// OffsetUS is microseconds from trace start: modeled time for
	// generated traces, wall-clock-since-first-capture for live ones.
	OffsetUS int64 `json:"off_us"`
	// Cohort tags the originating cohort ("" for live captures).
	Cohort string `json:"cohort,omitempty"`
	// Shard is the submission's shard id (trusted copy of the body's,
	// checked against it at replay).
	Shard string `json:"shard"`
	// Body is the submission body verbatim ([]byte marshals as base64):
	// the ingest JSON envelope around the profile's own CRC envelope.
	Body []byte `json:"body"`
}

// Writer appends records to a trace stream. Not safe for concurrent use;
// wrap with CaptureWriter for hook-driven capture.
type Writer struct {
	w io.Writer
	n int
}

// NewWriter writes the trace header and returns an appender.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	if meta.Spec != nil {
		if err := meta.Spec.Validate(); err != nil {
			return nil, err
		}
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("traffic: encode trace meta: %w", err)
	}
	if len(metaJSON) > maxMetaBytes {
		return nil, fmt.Errorf("traffic: trace meta %d bytes exceeds %d", len(metaJSON), maxMetaBytes)
	}
	var hdr [traceHeaderBytes]byte
	copy(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], traceVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(metaJSON)))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("traffic: write trace header: %w", err)
	}
	if _, err := w.Write(metaJSON); err != nil {
		return nil, fmt.Errorf("traffic: write trace meta: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(metaJSON, traceCRC))
	if _, err := w.Write(crc[:]); err != nil {
		return nil, fmt.Errorf("traffic: write trace meta checksum: %w", err)
	}
	return &Writer{w: w}, nil
}

// Append writes one record frame.
func (tw *Writer) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("traffic: encode trace record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("traffic: trace record %d bytes exceeds %d", len(payload), maxRecordBytes)
	}
	var frame [recFrameBytes]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, traceCRC))
	if _, err := tw.w.Write(frame[:]); err != nil {
		return fmt.Errorf("traffic: write trace record frame: %w", err)
	}
	if _, err := tw.w.Write(payload); err != nil {
		return fmt.Errorf("traffic: write trace record: %w", err)
	}
	tw.n++
	return nil
}

// Count returns how many records have been appended.
func (tw *Writer) Count() int { return tw.n }

// Reader decodes a trace stream.
type Reader struct {
	r    io.Reader
	meta Meta
}

// NewReader parses the trace header. Failures are typed: ErrTraceCorrupt
// (bad magic, bad meta), ErrTraceTruncated (stream ends inside the
// header), ErrTraceVersionSkew (other format version).
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [traceHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("traffic: trace header: %w", ErrTraceTruncated)
	}
	if string(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("traffic: trace magic %q: %w", hdr[0:4], ErrTraceCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != traceVersion {
		return nil, fmt.Errorf("traffic: trace format v%d, this build reads v%d: %w",
			v, traceVersion, ErrTraceVersionSkew)
	}
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > maxMetaBytes {
		return nil, fmt.Errorf("traffic: declared meta %d bytes exceeds %d: %w", n, maxMetaBytes, ErrTraceCorrupt)
	}
	metaJSON := make([]byte, n)
	if _, err := io.ReadFull(r, metaJSON); err != nil {
		return nil, fmt.Errorf("traffic: trace meta: %w", ErrTraceTruncated)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("traffic: trace meta checksum: %w", ErrTraceTruncated)
	}
	if got, want := crc32.Checksum(metaJSON, traceCRC), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("traffic: trace meta checksum %08x != %08x: %w", got, want, ErrTraceCorrupt)
	}
	tr := &Reader{r: r}
	if err := json.Unmarshal(metaJSON, &tr.meta); err != nil {
		return nil, fmt.Errorf("traffic: trace meta: %v: %w", err, ErrTraceCorrupt)
	}
	if tr.meta.Spec != nil {
		if err := tr.meta.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("traffic: trace meta spec: %v: %w", err, ErrTraceCorrupt)
		}
	}
	return tr, nil
}

// Meta returns the header block.
func (tr *Reader) Meta() Meta { return tr.meta }

// Next returns the next record. io.EOF means a clean end (the stream
// ended exactly on a record boundary); ErrTraceTruncated means a torn
// tail; ErrTraceCorrupt means checksum or decode failure.
func (tr *Reader) Next() (Record, error) {
	var frame [recFrameBytes]byte
	if _, err := io.ReadFull(tr.r, frame[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("traffic: trace record frame: %w", ErrTraceTruncated)
	}
	n := binary.LittleEndian.Uint32(frame[0:4])
	if n > maxRecordBytes {
		return Record{}, fmt.Errorf("traffic: declared record %d bytes exceeds %d: %w", n, maxRecordBytes, ErrTraceCorrupt)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(tr.r, payload); err != nil {
		return Record{}, fmt.Errorf("traffic: trace record payload: %w", ErrTraceTruncated)
	}
	if got, want := crc32.Checksum(payload, traceCRC), binary.LittleEndian.Uint32(frame[4:8]); got != want {
		return Record{}, fmt.Errorf("traffic: trace record checksum %08x != %08x: %w", got, want, ErrTraceCorrupt)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, fmt.Errorf("traffic: trace record: %v: %w", err, ErrTraceCorrupt)
	}
	if rec.Shard == "" || len(rec.Body) == 0 {
		return Record{}, fmt.Errorf("traffic: trace record missing shard or body: %w", ErrTraceCorrupt)
	}
	return rec, nil
}

// ReadAll decodes the whole trace. On a torn tail it returns the records
// recovered before the tear alongside the typed error, so a replayer can
// choose to proceed with what survived.
func ReadAll(r io.Reader) (Meta, []Record, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Meta{}, nil, err
	}
	var recs []Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return tr.meta, recs, nil
		}
		if err != nil {
			return tr.meta, recs, err
		}
		recs = append(recs, rec)
	}
}
