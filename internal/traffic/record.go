package traffic

import (
	"context"
	"sync"
	"time"

	"profileme/internal/ingest"
	"profileme/internal/profile"
	"profileme/internal/runner"
)

// RecordingSink tees a fleet's shard submissions into a trace while
// forwarding them to an inner sink. It implements runner.Sink, so
// `pmsim -record` wraps its HTTPSink with one and the fleet machinery
// is none the wiser. Offsets are wall-clock since the first submission
// (live captures have no modeled schedule). A nil inner sink records
// without delivering.
//
// The record is appended before the inner Submit, and kept even when
// delivery fails: a trace captures offered load, and replay's own retry
// loop re-litigates delivery.
type RecordingSink struct {
	inner  runner.Sink
	cohort string

	mu    sync.Mutex
	w     *Writer
	start time.Time
}

// NewRecordingSink wraps inner (which may be nil), tagging every record
// with cohort.
func NewRecordingSink(inner runner.Sink, w *Writer, cohort string) *RecordingSink {
	return &RecordingSink{inner: inner, w: w, cohort: cohort}
}

// Submit records the submission and forwards it.
func (rs *RecordingSink) Submit(ctx context.Context, shard string, db *profile.DB) error {
	body, err := ingest.EncodeSubmit(shard, db)
	if err != nil {
		return err
	}
	rs.mu.Lock()
	if rs.start.IsZero() {
		rs.start = time.Now()
	}
	err = rs.w.Append(Record{
		OffsetUS: time.Since(rs.start).Microseconds(),
		Cohort:   rs.cohort,
		Shard:    shard,
		Body:     body,
	})
	rs.mu.Unlock()
	if err != nil {
		return err
	}
	if rs.inner == nil {
		return nil
	}
	return rs.inner.Submit(ctx, shard, db)
}

// CaptureWriter adapts a trace Writer into the capture hook the
// collector and router configs accept (func(shard string, body []byte)):
// it serializes concurrent captures and stamps offsets from the first
// one. Capture errors are remembered (first wins) rather than surfaced
// per-request — a capture problem must not fail ingest.
type CaptureWriter struct {
	mu    sync.Mutex
	w     *Writer
	start time.Time
	err   error
}

// NewCaptureWriter wraps w.
func NewCaptureWriter(w *Writer) *CaptureWriter { return &CaptureWriter{w: w} }

// Capture records one submission body; pass this method as the Capture
// hook.
func (cw *CaptureWriter) Capture(shard string, body []byte) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.err != nil {
		return
	}
	if cw.start.IsZero() {
		cw.start = time.Now()
	}
	bodyCopy := make([]byte, len(body))
	copy(bodyCopy, body)
	cw.err = cw.w.Append(Record{
		OffsetUS: time.Since(cw.start).Microseconds(),
		Shard:    shard,
		Body:     bodyCopy,
	})
}

// Err returns the first capture failure, if any.
func (cw *CaptureWriter) Err() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.err
}

// Count returns how many records have been captured.
func (cw *CaptureWriter) Count() int {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.w.Count()
}
