package traffic

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"profileme/internal/ingest"
	"profileme/internal/runner"
)

// Options parameterize driving a schedule or a captured trace at a
// collector.
type Options struct {
	// Speed is the time-warp factor: 1 plays offsets as recorded, 2
	// twice as fast, 0.5 half speed. <= 0 plays with no pacing at all
	// (as fast as the collector admits) — the mode tests use.
	Speed float64
	// MaxAttempts bounds delivery attempts per submission (default 10).
	// Transient refusals (429/503/5xx/transport) retry with capped
	// exponential backoff; other 4xx are permanent and fail the record.
	MaxAttempts int
	// Backoff is the base retry delay (default 100ms, doubling per
	// attempt, capped at 32× base). Tests shrink it.
	Backoff time.Duration
	// Log receives per-record degradation lines (nil = silent).
	Log io.Writer
}

func (o *Options) normalize() {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 10
	}
	if o.Backoff == 0 {
		o.Backoff = 100 * time.Millisecond
	}
}

// Report summarizes a drive or replay run.
type Report struct {
	// Records offered, and how each delivery concluded.
	Records, Accepted, Failed int
	// Retries counts extra attempts beyond the first, across records.
	Retries int
	// ByCohort counts offered records per cohort tag.
	ByCohort map[string]int
	// DistinctShards is the number of unique shard ids offered.
	DistinctShards int
	// CapturedSum is Σ(Samples+Lost) over distinct shards — the offered
	// side of the tier's conservation invariant. Valid when every
	// record's body decodes (always, for generated and replayed runs).
	CapturedSum uint64
}

// Drive materializes the spec, walks its schedule against the sink, and
// optionally records every submission. The trace written here is a pure
// function of the spec: record offsets are the modeled schedule offsets
// (not wall time), so the same spec and seed produce a bit-identical
// trace file whatever the collector or -speed did.
func Drive(ctx context.Context, sp *Spec, sink runner.Sink, rec *Writer, opts Options) (*Report, error) {
	sched, err := sp.Schedule()
	if err != nil {
		return nil, err
	}
	pools, err := sp.Materialize()
	if err != nil {
		return nil, err
	}
	recs := make([]Record, 0, len(sched))
	for _, a := range sched {
		p := pools[a.Cohort][a.Shard]
		recs = append(recs, Record{
			OffsetUS: a.OffsetUS,
			Cohort:   a.Cohort,
			Shard:    p.Shard,
			Body:     p.Body,
		})
	}
	if rec != nil {
		for i := range recs {
			if err := rec.Append(recs[i]); err != nil {
				return nil, err
			}
		}
	}
	if sink == nil {
		// Record-only run: report the offered load without delivering.
		rep := newReport(recs)
		if err := tallyCaptured(recs, rep); err != nil {
			return nil, err
		}
		return rep, nil
	}
	return deliver(ctx, recs, sink, opts)
}

// Replay re-runs a captured trace against the sink, pacing inter-arrival
// gaps by opts.Speed. Each record's body is decoded (validating it) and
// resubmitted under its recorded shard id; transient refusals retry, so
// when Replay returns with Failed == 0 every record was accepted and —
// because the collector's merge is order-independent and deduped by
// shard id — the final aggregate bytes are a pure function of the trace.
func Replay(ctx context.Context, recs []Record, sink runner.Sink, opts Options) (*Report, error) {
	return deliver(ctx, recs, sink, opts)
}

func newReport(recs []Record) *Report {
	rep := &Report{Records: len(recs), ByCohort: make(map[string]int)}
	seen := make(map[string]bool)
	for i := range recs {
		rep.ByCohort[recs[i].Cohort]++
		if !seen[recs[i].Shard] {
			seen[recs[i].Shard] = true
			rep.DistinctShards++
		}
	}
	return rep
}

// tallyCaptured decodes each distinct shard's body once and sums its
// captured weight.
func tallyCaptured(recs []Record, rep *Report) error {
	seen := make(map[string]bool)
	for i := range recs {
		if seen[recs[i].Shard] {
			continue
		}
		seen[recs[i].Shard] = true
		sub, err := ingest.DecodeSubmit(recs[i].Body)
		if err != nil {
			return fmt.Errorf("traffic: record %d (%s): %w", i, recs[i].Shard, err)
		}
		rep.CapturedSum += sub.Captured()
	}
	return nil
}

func deliver(ctx context.Context, recs []Record, sink runner.Sink, opts Options) (*Report, error) {
	opts.normalize()
	rep := newReport(recs)
	start := time.Now()
	for i := range recs {
		rec := &recs[i]
		sub, err := ingest.DecodeSubmit(rec.Body)
		if err != nil {
			return rep, fmt.Errorf("traffic: record %d (%s): %w", i, rec.Shard, err)
		}
		if sub.Shard != rec.Shard {
			return rep, fmt.Errorf("traffic: record %d: frame says shard %q, body says %q: %w",
				i, rec.Shard, sub.Shard, ErrTraceCorrupt)
		}
		if err := pace(ctx, start, rec.OffsetUS, opts.Speed); err != nil {
			return rep, err
		}
		if err := submitWithRetry(ctx, sink, sub, opts, rep); err != nil {
			rep.Failed++
			logf(opts.Log, "traffic: record %d (%s) failed: %v", i, rec.Shard, err)
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			continue
		}
		rep.Accepted++
	}
	if err := tallyCaptured(recs, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// pace sleeps until the record's warped offset, relative to start.
func pace(ctx context.Context, start time.Time, offsetUS int64, speed float64) error {
	if speed <= 0 {
		return ctx.Err()
	}
	due := start.Add(time.Duration(float64(offsetUS)/speed) * time.Microsecond)
	wait := time.Until(due)
	if wait <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submitWithRetry applies the fleet's retry taxonomy: transient refusals
// (429/503/5xx/transport) back off and retry within the attempt budget,
// permanent refusals fail immediately.
func submitWithRetry(ctx context.Context, sink runner.Sink, sub ingest.Submission, opts Options, rep *Report) error {
	for attempt := 1; ; attempt++ {
		err := sink.Submit(ctx, sub.Shard, sub.DB)
		if err == nil {
			return nil
		}
		var se *runner.SubmitError
		transient := errors.As(err, &se) && se.Transient()
		if ctx.Err() != nil || !transient || attempt >= opts.MaxAttempts {
			return err
		}
		rep.Retries++
		delay := opts.Backoff << (attempt - 1)
		if max := opts.Backoff * 32; delay > max {
			delay = max
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
