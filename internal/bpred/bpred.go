// Package bpred models the front-end prediction hardware: a gshare-style
// conditional branch predictor driven by a global branch history register,
// a branch target buffer for indirect jumps, and a return address stack.
//
// The global history register matters beyond prediction accuracy: ProfileMe
// captures its contents at instruction fetch into the Profiled Path
// Register, which internal/pathprof uses to reconstruct execution paths
// (paper §5.3).
package bpred

import (
	"fmt"

	"profileme/internal/isa"
)

// Config sizes the prediction structures.
type Config struct {
	HistoryBits int // global history length (paper: 8-12 on 1997 processors)
	TableBits   int // log2 of the pattern history table size
	BTBEntries  int // direct-mapped BTB entries (power of two)
	RASEntries  int // return address stack depth
}

// DefaultConfig returns a 21264-flavoured predictor: 12 bits of global
// history, a 4K-entry PHT, 512-entry BTB and a 32-deep RAS.
func DefaultConfig() Config {
	return Config{HistoryBits: 12, TableBits: 12, BTBEntries: 512, RASEntries: 32}
}

// Validate reports a configuration problem, or nil.
func (c Config) Validate() error {
	switch {
	case c.HistoryBits < 1 || c.HistoryBits > 64:
		return fmt.Errorf("bpred: history bits %d out of range", c.HistoryBits)
	case c.TableBits < 1 || c.TableBits > 28:
		return fmt.Errorf("bpred: table bits %d out of range", c.TableBits)
	case c.BTBEntries <= 0 || c.BTBEntries&(c.BTBEntries-1) != 0:
		return fmt.Errorf("bpred: BTB entries %d not a power of two", c.BTBEntries)
	case c.RASEntries <= 0:
		return fmt.Errorf("bpred: RAS entries %d not positive", c.RASEntries)
	}
	return nil
}

// Predictor bundles the prediction structures. Not safe for concurrent use.
type Predictor struct {
	cfg      Config
	histMask uint64
	history  uint64 // speculative global history; youngest branch in bit 0
	pht      []uint8
	phtMask  uint64
	btb      []btbEntry
	btbMask  uint64
	ras      []uint64
	rasTop   int // number of valid entries

	lookups    uint64
	mispredict uint64
}

type btbEntry struct {
	pc     uint64
	target uint64
	valid  bool
}

// New returns a predictor with all counters weakly not-taken.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:      cfg,
		histMask: (uint64(1) << cfg.HistoryBits) - 1,
		pht:      make([]uint8, 1<<cfg.TableBits),
		phtMask:  (uint64(1) << cfg.TableBits) - 1,
		btb:      make([]btbEntry, cfg.BTBEntries),
		btbMask:  uint64(cfg.BTBEntries - 1),
		ras:      make([]uint64, cfg.RASEntries),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	return p, nil
}

// MustNew is New, panicking on error; for static configurations.
func MustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// History returns the current (speculative) global branch history register.
// Bit 0 is the direction of the most recent conditional branch; bit k the
// one k branches earlier. Only the low HistoryBits are meaningful.
func (p *Predictor) History() uint64 { return p.history & p.histMask }

// HistoryBits returns the number of meaningful history bits.
func (p *Predictor) HistoryBits() int { return p.cfg.HistoryBits }

// SetHistory overwrites the global history register; used when recovering
// from a mispredicted branch (the checkpointed value is restored).
func (p *Predictor) SetHistory(h uint64) { p.history = h & p.histMask }

func (p *Predictor) phtIndex(pc uint64) uint64 {
	return ((pc / isa.InstBytes) ^ p.history) & p.phtMask
}

// PredictCond predicts the direction of the conditional branch at pc using
// the current history (gshare). It does not change any state.
func (p *Predictor) PredictCond(pc uint64) bool {
	return p.pht[p.phtIndex(pc)] >= 2
}

// PushHistory speculatively shifts a predicted direction into the global
// history register. Call at fetch, for every conditional branch.
func (p *Predictor) PushHistory(taken bool) {
	p.history = (p.history << 1) & p.histMask
	if taken {
		p.history |= 1
	}
}

// UpdateCond trains the pattern history table for the branch at pc with its
// resolved direction. histAtFetch must be the history value the prediction
// was made under, so training hits the same PHT entry.
func (p *Predictor) UpdateCond(pc uint64, taken bool, histAtFetch uint64) {
	idx := ((pc / isa.InstBytes) ^ (histAtFetch & p.histMask)) & p.phtMask
	c := p.pht[idx]
	if taken {
		if c < 3 {
			p.pht[idx] = c + 1
		}
	} else if c > 0 {
		p.pht[idx] = c - 1
	}
}

// RecordOutcome tallies prediction accuracy statistics.
func (p *Predictor) RecordOutcome(correct bool) {
	p.lookups++
	if !correct {
		p.mispredict++
	}
}

// Accuracy returns (lookups, mispredicts) recorded via RecordOutcome.
func (p *Predictor) Accuracy() (lookups, mispredicts uint64) {
	return p.lookups, p.mispredict
}

// BTBLookup returns the predicted target for the indirect control transfer
// at pc, and whether the BTB held an entry.
func (p *Predictor) BTBLookup(pc uint64) (target uint64, ok bool) {
	e := p.btb[(pc/isa.InstBytes)&p.btbMask]
	if e.valid && e.pc == pc {
		return e.target, true
	}
	return 0, false
}

// BTBUpdate installs the resolved target of the transfer at pc.
func (p *Predictor) BTBUpdate(pc, target uint64) {
	p.btb[(pc/isa.InstBytes)&p.btbMask] = btbEntry{pc: pc, target: target, valid: true}
}

// RASPush records a return address at a call.
func (p *Predictor) RASPush(ret uint64) {
	if p.rasTop == len(p.ras) {
		// Overflow: drop the oldest entry (shift; stacks are small).
		copy(p.ras, p.ras[1:])
		p.rasTop--
	}
	p.ras[p.rasTop] = ret
	p.rasTop++
}

// RASPop predicts a return target. ok is false when the stack is empty.
func (p *Predictor) RASPop() (target uint64, ok bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop], true
}

// RASDepth returns the number of valid RAS entries (a mispredict-recovery
// checkpoint; see RASRestore).
func (p *Predictor) RASDepth() int { return p.rasTop }

// RASRestore rewinds the stack pointer to a checkpointed depth. This is
// the usual cheap top-of-stack recovery: entries above the checkpoint are
// discarded; entries below may have been clobbered by wrong-path pushes
// (an accepted approximation, as in real hardware).
func (p *Predictor) RASRestore(depth int) {
	if depth < 0 {
		depth = 0
	}
	if depth > len(p.ras) {
		depth = len(p.ras)
	}
	p.rasTop = depth
}
