package bpred

import (
	"testing"
	"testing/quick"
)

func newP(t *testing.T) *Predictor {
	t.Helper()
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{HistoryBits: 0, TableBits: 10, BTBEntries: 16, RASEntries: 4},
		{HistoryBits: 70, TableBits: 10, BTBEntries: 16, RASEntries: 4},
		{HistoryBits: 8, TableBits: 0, BTBEntries: 16, RASEntries: 4},
		{HistoryBits: 8, TableBits: 10, BTBEntries: 15, RASEntries: 4},
		{HistoryBits: 8, TableBits: 10, BTBEntries: 16, RASEntries: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestAlwaysTakenBranchLearns(t *testing.T) {
	p := newP(t)
	const pc = 0x40
	wrong := 0
	for i := 0; i < 100; i++ {
		h := p.History()
		pred := p.PredictCond(pc)
		p.PushHistory(true)
		p.UpdateCond(pc, true, h)
		// The first ~HistoryBits iterations see fresh history values and
		// index cold PHT entries; only steady state must be perfect.
		if i >= 20 && !pred {
			wrong++
		}
	}
	if wrong > 0 {
		t.Fatalf("always-taken branch mispredicted %d times after warmup", wrong)
	}
}

func TestAlternatingBranchLearnsWithHistory(t *testing.T) {
	// A strictly alternating branch is perfectly predictable through
	// global history once the PHT trains: the history disambiguates the
	// two phases.
	p := newP(t)
	const pc = 0x80
	wrong := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		h := p.History()
		pred := p.PredictCond(pc)
		p.PushHistory(taken)
		p.UpdateCond(pc, taken, h)
		if i >= 100 && pred != taken {
			wrong++
		}
	}
	if wrong > 10 {
		t.Fatalf("alternating branch mispredicted %d/300 after warmup", wrong)
	}
}

func TestHistoryShiftsAndMasks(t *testing.T) {
	p := newP(t)
	p.PushHistory(true)
	p.PushHistory(false)
	p.PushHistory(true)
	if p.History()&0x7 != 0b101 {
		t.Fatalf("history = %b", p.History())
	}
	for i := 0; i < 100; i++ {
		p.PushHistory(true)
	}
	if p.History() != (1<<p.HistoryBits())-1 {
		t.Fatalf("history not saturated at mask: %b", p.History())
	}
}

func TestSetHistoryRestores(t *testing.T) {
	p := newP(t)
	p.PushHistory(true)
	p.PushHistory(true)
	saved := p.History()
	p.PushHistory(false)
	p.PushHistory(true)
	p.SetHistory(saved)
	if p.History() != saved {
		t.Fatal("history restore failed")
	}
}

func TestBTB(t *testing.T) {
	p := newP(t)
	if _, ok := p.BTBLookup(0x100); ok {
		t.Fatal("cold BTB hit")
	}
	p.BTBUpdate(0x100, 0x2000)
	if tgt, ok := p.BTBLookup(0x100); !ok || tgt != 0x2000 {
		t.Fatalf("BTB lookup = %#x, %v", tgt, ok)
	}
	// A conflicting PC (same index, different tag) must not false-hit.
	conflict := uint64(0x100 + 512*4)
	if _, ok := p.BTBLookup(conflict); ok {
		t.Fatal("BTB aliased")
	}
	p.BTBUpdate(conflict, 0x3000)
	if _, ok := p.BTBLookup(0x100); ok {
		t.Fatal("evicted entry still hit")
	}
}

func TestRASPushPop(t *testing.T) {
	p := newP(t)
	p.RASPush(0x10)
	p.RASPush(0x20)
	if tgt, ok := p.RASPop(); !ok || tgt != 0x20 {
		t.Fatalf("pop = %#x, %v", tgt, ok)
	}
	if tgt, ok := p.RASPop(); !ok || tgt != 0x10 {
		t.Fatalf("pop = %#x, %v", tgt, ok)
	}
	if _, ok := p.RASPop(); ok {
		t.Fatal("pop from empty stack succeeded")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASEntries = 2
	p := MustNew(cfg)
	p.RASPush(1)
	p.RASPush(2)
	p.RASPush(3)
	if tgt, _ := p.RASPop(); tgt != 3 {
		t.Fatalf("top = %d", tgt)
	}
	if tgt, _ := p.RASPop(); tgt != 2 {
		t.Fatalf("second = %d", tgt)
	}
	if _, ok := p.RASPop(); ok {
		t.Fatal("oldest entry should have been dropped")
	}
}

func TestRASRestore(t *testing.T) {
	p := newP(t)
	p.RASPush(1)
	depth := p.RASDepth()
	p.RASPush(2)
	p.RASPush(3)
	p.RASRestore(depth)
	if tgt, ok := p.RASPop(); !ok || tgt != 1 {
		t.Fatalf("after restore pop = %#x, %v", tgt, ok)
	}
	p.RASRestore(-5)
	if p.RASDepth() != 0 {
		t.Fatal("negative restore not clamped")
	}
	p.RASRestore(1000)
	if p.RASDepth() != len(p.ras) {
		t.Fatal("oversized restore not clamped")
	}
}

func TestAccuracyCounters(t *testing.T) {
	p := newP(t)
	p.RecordOutcome(true)
	p.RecordOutcome(false)
	p.RecordOutcome(false)
	l, m := p.Accuracy()
	if l != 3 || m != 2 {
		t.Fatalf("accuracy = %d/%d", m, l)
	}
}

func TestPHTCountersStayInRange(t *testing.T) {
	f := func(pcs []uint16, dirs []bool) bool {
		p := MustNew(DefaultConfig())
		n := len(pcs)
		if len(dirs) < n {
			n = len(dirs)
		}
		for i := 0; i < n; i++ {
			pc := uint64(pcs[i]) * 4
			h := p.History()
			p.PredictCond(pc)
			p.PushHistory(dirs[i])
			p.UpdateCond(pc, dirs[i], h)
		}
		for _, c := range p.pht {
			if c > 3 {
				return false
			}
		}
		return p.History() == p.History()&((1<<p.HistoryBits())-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateUsesFetchHistory(t *testing.T) {
	// Two branch contexts that differ only in history must train distinct
	// PHT entries: train pc under h1=...1 as taken, under h2=...0 as
	// not-taken, then verify the predictions differ.
	p := newP(t)
	const pc = 0x400
	h1, h2 := uint64(1), uint64(0)
	for i := 0; i < 10; i++ {
		p.UpdateCond(pc, true, h1)
		p.UpdateCond(pc, false, h2)
	}
	p.SetHistory(h1)
	pred1 := p.PredictCond(pc)
	p.SetHistory(h2)
	pred2 := p.PredictCond(pc)
	if !pred1 || pred2 {
		t.Fatalf("history-disambiguated predictions wrong: %v %v", pred1, pred2)
	}
}
