package bpred

import "testing"

func BenchmarkPredictAndUpdate(b *testing.B) {
	p := MustNew(DefaultConfig())
	for i := 0; i < b.N; i++ {
		pc := uint64(i%64) * 4
		h := p.History()
		taken := i%3 != 0
		p.PredictCond(pc)
		p.PushHistory(taken)
		p.UpdateCond(pc, taken, h)
	}
}

func BenchmarkBTB(b *testing.B) {
	p := MustNew(DefaultConfig())
	p.BTBUpdate(0x100, 0x400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BTBLookup(0x100)
	}
}
