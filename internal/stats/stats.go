package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates streaming first and second moments plus extrema.
// The zero value is an empty accumulator ready for use.
type Running struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add folds x into the accumulator (Welford's algorithm).
func (a *Running) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if !a.hasExtrema || x < a.min {
		a.min = x
	}
	if !a.hasExtrema || x > a.max {
		a.max = x
	}
	a.hasExtrema = true
}

// N returns the number of samples added.
func (a *Running) N() int64 { return a.n }

// Mean returns the sample mean, or 0 when empty.
func (a *Running) Mean() float64 { return a.mean }

// Variance returns the (population) variance, or 0 for fewer than 2 samples.
func (a *Running) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev returns the population standard deviation.
func (a *Running) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample, or 0 when empty.
func (a *Running) Min() float64 { return a.min }

// Max returns the largest sample, or 0 when empty.
func (a *Running) Max() float64 { return a.max }

// CoV returns the coefficient of variation (stddev/mean), or 0 when the
// mean is 0.
func (a *Running) CoV() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.StdDev() / a.mean
}

// Weighted accumulates weighted first and second moments. The paper's §6
// reports the standard deviation of windowed IPC "weighted by retire count";
// this is the accumulator for that kind of statistic.
type Weighted struct {
	wsum, mean, m2 float64
}

// Add folds x with weight w (w must be non-negative; zero weights are
// ignored).
func (a *Weighted) Add(x, w float64) {
	if w <= 0 {
		return
	}
	a.wsum += w
	d := x - a.mean
	a.mean += d * w / a.wsum
	a.m2 += w * d * (x - a.mean)
}

// WeightSum returns the total weight added.
func (a *Weighted) WeightSum() float64 { return a.wsum }

// Mean returns the weighted mean.
func (a *Weighted) Mean() float64 { return a.mean }

// Variance returns the weighted population variance.
func (a *Weighted) Variance() float64 {
	if a.wsum == 0 {
		return 0
	}
	return a.m2 / a.wsum
}

// StdDev returns the weighted population standard deviation.
func (a *Weighted) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation. It sorts a copy; xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram is a fixed-bin-width histogram over int64 keys. It is used for
// the Figure 2 PC-offset histograms and for latency distributions.
type Histogram struct {
	counts map[int64]int64
	total  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int64]int64)}
}

// Add increments the count for key.
func (h *Histogram) Add(key int64) { h.AddN(key, 1) }

// AddN adds n observations of key.
func (h *Histogram) AddN(key, n int64) {
	h.counts[key] += n
	h.total += n
}

// Count returns the number of observations of key.
func (h *Histogram) Count(key int64) int64 { return h.counts[key] }

// Total returns the total number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Keys returns the observed keys in ascending order.
func (h *Histogram) Keys() []int64 {
	keys := make([]int64, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Fraction returns the fraction of observations at key, or 0 when empty.
func (h *Histogram) Fraction(key int64) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[key]) / float64(h.total)
}

// Mode returns the key with the highest count and that count. When the
// histogram is empty it returns (0, 0).
func (h *Histogram) Mode() (key int64, count int64) {
	first := true
	for k, c := range h.counts {
		if first || c > count || (c == count && k < key) {
			key, count, first = k, c, false
		}
	}
	return key, count
}

// Spread returns the smallest number of consecutive keys (by sorted order,
// not necessarily contiguous values) whose counts sum to at least fraction
// frac of the total. It quantifies how concentrated a distribution is: the
// Figure 2 experiment reports, e.g., that 90% of in-order samples land on 1
// key while out-of-order samples spread over ~25.
func (h *Histogram) Spread(frac float64) int {
	if h.total == 0 {
		return 0
	}
	counts := make([]int64, 0, len(h.counts))
	for _, c := range h.counts {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	need := int64(math.Ceil(frac * float64(h.total)))
	var sum int64
	for i, c := range counts {
		sum += c
		if sum >= need {
			return i + 1
		}
	}
	return len(counts)
}

// Render returns a text rendering of the histogram with proportional bars,
// suitable for terminal output. label maps keys to row labels.
func (h *Histogram) Render(width int, label func(int64) string) string {
	keys := h.Keys()
	_, maxCount := h.Mode()
	var b strings.Builder
	for _, k := range keys {
		c := h.counts[k]
		bar := 0
		if maxCount > 0 {
			bar = int(float64(c) / float64(maxCount) * float64(width))
		}
		fmt.Fprintf(&b, "%12s %8d %5.1f%% %s\n", label(k), c, 100*h.Fraction(k), strings.Repeat("#", bar))
	}
	return b.String()
}

// EnvelopeFraction returns the fraction of (x, ratio) points that fall within
// the 1 ± 1/√x envelope used by the paper's Figure 3: for each point, x is
// the number of samples with the property and ratio is estimate/actual.
// Points with x == 0 are skipped.
func EnvelopeFraction(xs, ratios []float64) float64 {
	if len(xs) != len(ratios) {
		panic("stats: EnvelopeFraction length mismatch")
	}
	in, n := 0, 0
	for i, x := range xs {
		if x <= 0 {
			continue
		}
		n++
		half := 1 / math.Sqrt(x)
		if ratios[i] >= 1-half && ratios[i] <= 1+half {
			in++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(in) / float64(n)
}
