// Package stats provides deterministic pseudo-random number generation and
// the small statistical toolkit used throughout the ProfileMe reproduction:
// histograms, running moments, weighted statistics and confidence envelopes.
//
// Everything here is seeded and reproducible: experiments must produce the
// same tables on every run so that EXPERIMENTS.md stays meaningful.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). It is not safe for concurrent use;
// give each goroutine its own RNG via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Distinct seeds yield
// decorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm = splitmix64(&sm)
		r.s[i] = sm
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new RNG whose stream is decorrelated from r's. The parent
// stream advances by one draw.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	rotl := func(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly random integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniformly random integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("stats: IntRange called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a draw from a geometric distribution with mean m >= 1:
// the number of trials up to and including the first success with success
// probability 1/m. This is the natural randomization for sampling intervals
// (each fetched instruction is independently selected with probability 1/m),
// giving an unbiased, alias-free instruction sample.
func (r *RNG) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	u := r.Float64()
	// Inverse CDF of the geometric distribution with p = 1/m.
	n := int(math.Ceil(math.Log(1-u) / math.Log(1-1/m)))
	if n < 1 {
		n = 1
	}
	return n
}

// UniformInterval returns a draw uniform on [1, 2m-1], an alternative
// randomized sampling interval with mean m used by the interval ablation.
func (r *RNG) UniformInterval(m int) int {
	if m <= 1 {
		return 1
	}
	return r.IntRange(1, 2*m-1)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
