package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestRNGSplitDecorrelates(t *testing.T) {
	a := NewRNG(7)
	c := a.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matched parent %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(3, 9)
		if v < 3 || v > 9 {
			t.Fatalf("IntRange(3,9) = %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(9)
	const mean, draws = 100.0, 200000
	sum := 0
	for i := 0; i < draws; i++ {
		v := r.Geometric(mean)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	got := float64(sum) / draws
	if got < mean*0.97 || got > mean*1.03 {
		t.Fatalf("geometric mean = %.2f, want ~%.0f", got, mean)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", v)
		}
		if v := r.Geometric(0); v != 1 {
			t.Fatalf("Geometric(0) = %d, want 1", v)
		}
	}
}

func TestUniformIntervalMean(t *testing.T) {
	r := NewRNG(13)
	const m, draws = 50, 200000
	sum := 0
	for i := 0; i < draws; i++ {
		v := r.UniformInterval(m)
		if v < 1 || v > 2*m-1 {
			t.Fatalf("UniformInterval out of range: %d", v)
		}
		sum += v
	}
	got := float64(sum) / draws
	if got < m*0.97 || got > m*1.03 {
		t.Fatalf("uniform interval mean = %.2f, want ~%d", got, m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRunningMoments(t *testing.T) {
	var a Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", a.Mean())
	}
	if math.Abs(a.StdDev()-2) > 1e-12 {
		t.Fatalf("stddev = %v", a.StdDev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("extrema = %v..%v", a.Min(), a.Max())
	}
	if math.Abs(a.CoV()-0.4) > 1e-12 {
		t.Fatalf("CoV = %v", a.CoV())
	}
}

func TestRunningEmpty(t *testing.T) {
	var a Running
	if a.Mean() != 0 || a.Variance() != 0 || a.CoV() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var a Running
		for _, x := range clean {
			a.Add(x)
		}
		mean := Mean(clean)
		v := 0.0
		for _, x := range clean {
			v += (x - mean) * (x - mean)
		}
		v /= float64(len(clean))
		return math.Abs(a.Mean()-mean) < 1e-6 && math.Abs(a.Variance()-v) < 1e-4*(1+v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedReducesToUnweighted(t *testing.T) {
	var w Weighted
	var u Running
	r := NewRNG(23)
	for i := 0; i < 1000; i++ {
		x := r.Float64() * 10
		w.Add(x, 1)
		u.Add(x)
	}
	if math.Abs(w.Mean()-u.Mean()) > 1e-9 {
		t.Fatalf("weighted mean %v != unweighted %v", w.Mean(), u.Mean())
	}
	if math.Abs(w.StdDev()-u.StdDev()) > 1e-9 {
		t.Fatalf("weighted stddev %v != unweighted %v", w.StdDev(), u.StdDev())
	}
}

func TestWeightedIgnoresZeroWeight(t *testing.T) {
	var w Weighted
	w.Add(5, 2)
	w.Add(1e9, 0)
	w.Add(-1e9, -3)
	if w.Mean() != 5 || w.WeightSum() != 2 {
		t.Fatalf("mean=%v wsum=%v", w.Mean(), w.WeightSum())
	}
}

func TestWeightedScaleInvariance(t *testing.T) {
	f := func(raw []float64) bool {
		var a, b Weighted
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
			w := float64(i%3 + 1)
			a.Add(x, w)
			b.Add(x, w*7)
		}
		return math.Abs(a.Mean()-b.Mean()) < 1e-6 && math.Abs(a.Variance()-b.Variance()) < 1e-4*(1+a.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	h.Add(5)
	h.AddN(7, 3)
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(5) != 2 || h.Count(7) != 3 || h.Count(9) != 0 {
		t.Fatal("wrong counts")
	}
	if k, c := h.Mode(); k != 7 || c != 3 {
		t.Fatalf("mode = (%d, %d)", k, c)
	}
	keys := h.Keys()
	if len(keys) != 2 || keys[0] != 5 || keys[1] != 7 {
		t.Fatalf("keys = %v", keys)
	}
	if math.Abs(h.Fraction(7)-0.6) > 1e-12 {
		t.Fatalf("fraction = %v", h.Fraction(7))
	}
}

func TestHistogramSpread(t *testing.T) {
	h := NewHistogram()
	h.AddN(0, 90)
	for i := int64(1); i <= 10; i++ {
		h.AddN(i, 1)
	}
	if got := h.Spread(0.9); got != 1 {
		t.Fatalf("Spread(0.9) = %d, want 1", got)
	}
	if got := h.Spread(1.0); got != 11 {
		t.Fatalf("Spread(1.0) = %d, want 11", got)
	}

	flat := NewHistogram()
	for i := int64(0); i < 20; i++ {
		flat.AddN(i, 5)
	}
	if got := flat.Spread(0.9); got != 18 {
		t.Fatalf("flat Spread(0.9) = %d, want 18", got)
	}
}

func TestHistogramSpreadEmpty(t *testing.T) {
	if got := NewHistogram().Spread(0.9); got != 0 {
		t.Fatalf("empty Spread = %d", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram()
	h.AddN(1, 10)
	h.AddN(2, 5)
	out := h.Render(20, func(k int64) string { return "k" + string(rune('0'+k)) })
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestEnvelopeFraction(t *testing.T) {
	// Points exactly on the boundary count as inside.
	xs := []float64{4, 4, 4, 100}
	ratios := []float64{1.5, 0.5, 1.6, 1.05}
	// envelopes: ±0.5 at x=4 (in, in, out), ±0.1 at x=100 (in)
	got := EnvelopeFraction(xs, ratios)
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("EnvelopeFraction = %v, want 0.75", got)
	}
}

func TestEnvelopeFractionSkipsZeroX(t *testing.T) {
	if got := EnvelopeFraction([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
