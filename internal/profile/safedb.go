package profile

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"profileme/internal/core"
	"profileme/internal/isa"
)

// SafeDB wraps a DB with an RWMutex for writers plus an epoch-based
// copy-on-write read path: every write publishes an immutable View
// (counters, top-K sketch rows, latency quantile summaries) that readers
// load with a single atomic pointer read. The hot query path —
// /v1/hotpcs, /v1/stats, windowed "last N seconds" queries — therefore
// takes NO lock that contends with the merge loop; only the exact
// fallbacks (HotPCsExact, Get, PCs, Save, per-PC estimators) still take
// the read lock and pay the deep-copy cost.
//
// It is the concurrency boundary the pmsimd service builds on: a plain
// DB stays single-owner (see the DB doc comment), and the moment two
// goroutines need the same database, it goes behind a SafeDB.
//
// Copy-vs-alias semantics: reader methods never leak interior pointers
// into the live database. Exact-path results (Get, HotPCsExact) are
// returned by value with slices deep-copied; View() returns a shared
// IMMUTABLE snapshot that callers must treat as read-only but may retain
// forever; HotPCs copies rows out of the view before returning them, so
// its results are safe to mutate.
type SafeDB struct {
	mu sync.RWMutex
	db *DB

	cfg    SketchConfig
	topk   *SpaceSaving
	window *WindowRing
	lat    [NumLatencyKinds]*QuantileSketch
	inprog *QuantileSketch

	epoch     uint64
	publishes uint64
	sinceRows int
	view      atomic.Pointer[View]
}

// NewSafeDB wraps db with default sketch parameters (SketchConfig zero
// values). The caller must hand over ownership: after this call, all
// access to db goes through the wrapper.
func NewSafeDB(db *DB) *SafeDB { return NewSafeDBWith(db, SketchConfig{}) }

// NewSafeDBWith wraps db with explicit sketch parameters, seeding the
// top-K and quantile sketches from db's existing contents (one O(DB)
// pass — the restart-from-checkpoint path) and publishing the initial
// view. The windowed ring starts empty: historical samples carry no
// arrival timestamps.
func NewSafeDBWith(db *DB, cfg SketchConfig) *SafeDB {
	cfg.normalize()
	s := &SafeDB{
		db:     db,
		cfg:    cfg,
		topk:   NewSpaceSaving(cfg.TopK),
		window: NewWindowRing(cfg.WindowBuckets, cfg.BucketDur, cfg.TopK),
		inprog: NewQuantileSketch(cfg.Alpha),
	}
	for i := range s.lat {
		s.lat[i] = NewQuantileSketch(cfg.Alpha)
	}
	for pc, a := range db.byPC {
		s.topk.Add(pc, a.Samples)
		for i := 0; i < NumLatencyKinds; i++ {
			if a.LatCount[i] > 0 {
				s.lat[i].AddN(float64(a.LatSum[i])/float64(a.LatCount[i]), a.LatCount[i])
			}
		}
		if a.InProgressCount > 0 {
			s.inprog.AddN(float64(a.InProgressSum)/float64(a.InProgressCount), a.InProgressCount)
		}
	}
	s.mu.Lock()
	s.publishLocked(true)
	s.mu.Unlock()
	return s
}

// View returns the latest published snapshot: one atomic load, no lock,
// no copies. The result is immutable and shared — treat it as read-only
// (see the View doc). It is never nil after construction.
func (s *SafeDB) View() *View { return s.view.Load() }

// publishLocked builds and installs a new view. Caller holds mu (write).
// rows=false is the cheap counter-only republish: the previous view's
// row and latency slices are shared (they are immutable), so it is O(1).
// rows=true rebuilds the top-K rows (O(K log K) plus K accumulator deep
// copies) and the latency summaries.
func (s *SafeDB) publishLocked(rows bool) {
	s.epoch++
	v := &View{
		Epoch: s.epoch,
		When:  s.cfg.Now(),
		Counters: Counters{
			Samples:         s.db.Samples(),
			Pairs:           s.db.Pairs(),
			Lost:            s.db.Lost(),
			CorruptRejected: s.db.CorruptRejected(),
			LossRate:        s.db.LossRate(),
		},
		S:        s.db.S,
		LossCorr: s.db.lossCorrection(),
		TopKCap:  s.cfg.TopK,
		SketchN:  s.topk.N(),
		Floor:    s.topk.MinCount(),
	}
	if prev := s.view.Load(); !rows && prev != nil {
		v.TopK = prev.TopK
		v.Latencies = prev.Latencies
		v.byPC = prev.byPC
	} else {
		s.publishes++
		items := s.topk.Items()
		v.TopK = make([]HotView, 0, len(items))
		v.byPC = make(map[uint64]*HotView, len(items))
		for _, e := range items {
			hv := HotView{Est: e.Count, MaxErr: e.Err}
			if a := s.db.byPC[e.PC]; a != nil {
				hv.Acc = copyAccum(a)
			} else {
				hv.Acc = PCAccum{PC: e.PC}
			}
			v.TopK = append(v.TopK, hv)
		}
		for i := range v.TopK {
			v.byPC[v.TopK[i].Acc.PC] = &v.TopK[i]
		}
		v.Latencies = make([]QuantileSummary, 0, NumLatencyKinds+1)
		for i := 0; i < NumLatencyKinds; i++ {
			v.Latencies = append(v.Latencies, s.lat[i].summarize(LatencyKindName(i)))
		}
		v.Latencies = append(v.Latencies, s.inprog.summarize("inprogress"))
		s.sinceRows = 0
	}
	s.view.Store(v)
}

// SamplingConfig returns the wrapped database's sampling configuration —
// what an incoming shard must match to be mergeable.
func (s *SafeDB) SamplingConfig() (interval float64, window, width int, tNear int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.S, s.db.W, s.db.C, s.db.TNear
}

// Merge folds a shard database into the aggregate (write lock), updates
// the streaming summaries with the shard's per-PC deltas, and publishes
// a fresh view with rebuilt rows. The shard must not be accessed
// concurrently by anyone else; ownership of its counts transfers to the
// aggregate.
func (s *SafeDB) Merge(other *DB) error {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.db.Merge(other); err != nil {
		return err
	}
	for pc, a := range other.byPC {
		s.topk.Add(pc, a.Samples)
		s.window.Add(now, pc, a.Samples)
		for i := 0; i < NumLatencyKinds; i++ {
			if a.LatCount[i] > 0 {
				s.lat[i].AddN(float64(a.LatSum[i])/float64(a.LatCount[i]), a.LatCount[i])
			}
		}
		if a.InProgressCount > 0 {
			s.inprog.AddN(float64(a.InProgressSum)/float64(a.InProgressCount), a.InProgressCount)
		}
	}
	s.publishLocked(true)
	return nil
}

// Add folds one sample into the aggregate (write lock) and the
// summaries. Counters republish on every Add; sketch rows are rebuilt
// every SketchConfig.PublishEvery adds (the view's row staleness bound
// on the per-sample path).
func (s *SafeDB) Add(smp core.Sample) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.db.corruptRejected
	s.db.Add(smp)
	if s.db.corruptRejected == before {
		s.addRecordSketch(now, &smp.First)
		if smp.Paired {
			s.addRecordSketch(now, &smp.Second)
		}
	}
	s.sinceRows++
	s.publishLocked(s.sinceRows >= s.cfg.PublishEvery)
}

// addRecordSketch mirrors DB.addRecord for the sketch layer. Caller
// holds mu (write).
func (s *SafeDB) addRecordSketch(now time.Time, r *core.Record) {
	if r.Events.Has(core.EvNoInstruction) {
		return
	}
	s.topk.Add(r.PC, 1)
	s.window.Add(now, r.PC, 1)
	for i, lk := range latencyKinds {
		if lat, ok := r.Latency(lk.From, lk.To); ok {
			s.lat[i].Add(float64(lat))
		}
	}
	if from, to, ok := r.InProgress(); ok {
		s.inprog.Add(float64(to - from))
	}
}

// RecordLoss notes n captured-but-never-delivered samples (write lock)
// and republishes counters.
func (s *SafeDB) RecordLoss(n uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.RecordLoss(n)
	s.publishLocked(false)
}

// ReverseLoss retracts n samples previously recorded as loss (write
// lock) — see DB.ReverseLoss — and republishes counters.
func (s *SafeDB) ReverseLoss(n uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.ReverseLoss(n)
	s.publishLocked(false)
}

// Samples returns the number of delivered samples (lock-free, from the
// published view).
func (s *SafeDB) Samples() uint64 { return s.View().Counters.Samples }

// Pairs returns the number of paired samples (lock-free).
func (s *SafeDB) Pairs() uint64 { return s.View().Counters.Pairs }

// Lost returns the total samples known lost before aggregation
// (lock-free).
func (s *SafeDB) Lost() uint64 { return s.View().Counters.Lost }

// CorruptRejected returns the count of delivered samples rejected as
// damaged (lock-free).
func (s *SafeDB) CorruptRejected() uint64 { return s.View().Counters.CorruptRejected }

// LossRate returns the fraction of captured samples that never made it
// into the aggregate (lock-free).
func (s *SafeDB) LossRate() float64 { return s.View().Counters.LossRate }

// Counters is the cheap whole-aggregate rollup: plain totals, no per-PC
// state. It is a value type — snapshots never alias live state.
type Counters struct {
	Samples         uint64
	Pairs           uint64
	Lost            uint64
	CorruptRejected uint64
	LossRate        float64
}

// CountersSnapshot returns every scalar counter from the published view
// — one atomic load, no lock, no copies. This is the read path for
// /v1/stats and readiness polls, which must never contend with merges.
// The counters are exact as of the view epoch; every write republishes
// them, so a snapshot taken after a write completes reflects that write.
func (s *SafeDB) CountersSnapshot() Counters { return s.View().Counters }

// SketchStats reports the sketch layer's health for /v1/stats.
func (s *SafeDB) SketchStats() SketchStats {
	v := s.View()
	return SketchStats{
		Epoch:           v.Epoch,
		Publishes:       atomic.LoadUint64(&s.publishes),
		TopK:            v.TopKCap,
		TrackedPCs:      len(v.TopK),
		SketchN:         v.SketchN,
		Floor:           v.Floor,
		WindowBuckets:   s.cfg.WindowBuckets,
		WindowBucketMS:  s.window.BucketDur().Milliseconds(),
		WindowHorizonMS: s.window.Horizon().Milliseconds(),
		Latencies:       v.Latencies,
	}
}

// EstimatedCount estimates how many times pc was fetched, loss-corrected
// (read lock: per-PC map access on the live database).
func (s *SafeDB) EstimatedCount(pc uint64) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.EstimatedCount(pc)
}

// EstimatedEventCount estimates occurrences of ev at pc, loss-corrected
// (read lock).
func (s *SafeDB) EstimatedEventCount(pc uint64, ev core.Event) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.EstimatedEventCount(pc, ev)
}

// PCs returns all profiled PCs in ascending order (read lock; O(DB) —
// an inherently exact, whole-database scan).
func (s *SafeDB) PCs() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.PCs()
}

// Get returns a deep copy of the accumulator for pc; ok is false when the
// PC has never been sampled (read lock). The copy shares no slices with
// the live database and is safe to retain and mutate.
func (s *SafeDB) Get(pc uint64) (PCAccum, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a := s.db.Get(pc)
	if a == nil {
		return PCAccum{}, false
	}
	return copyAccum(a), true
}

// HotPCs returns the n hottest accumulators, descending by sample count.
// For n within the sketch capacity it serves O(n) from the published
// view — sketch-backed: membership and order are approximate with the
// space-saving bounds (exact whenever the aggregate has at most K
// distinct PCs), and contents are exact as of the view epoch. Larger n
// falls back to HotPCsExact. Results are deep copies, safe to mutate.
func (s *SafeDB) HotPCs(n int) []PCAccum {
	if n > 0 && n <= s.cfg.TopK {
		v := s.View()
		rows := v.TopK
		if len(rows) > n {
			rows = rows[:n]
		}
		out := make([]PCAccum, len(rows))
		for i := range rows {
			out[i] = copyAccum(&rows[i].Acc)
		}
		return out
	}
	return s.HotPCsExact(n)
}

// HotPCsExact returns deep copies of the n hottest accumulators from the
// live database: the exact fallback path. It takes the read lock and
// pays an O(DB log DB) sort plus n deep copies — the cost the sketch
// path exists to avoid.
func (s *SafeDB) HotPCsExact(n int) []PCAccum {
	s.mu.RLock()
	defer s.mu.RUnlock()
	accs := s.db.HotPCs(n)
	out := make([]PCAccum, len(accs))
	for i, a := range accs {
		out[i] = copyAccum(a)
	}
	return out
}

// WindowHotPCs answers "hot PCs in the last `window`" from the ring of
// time-bucketed sketches: O(K * buckets), never O(DB), and no SafeDB
// lock (the ring has its own bucket-granular lock with O(log K) writer
// hold times). Rows are sketch estimates only — per-bucket rings keep no
// accumulators.
func (s *SafeDB) WindowHotPCs(window time.Duration, n int) WindowResult {
	return s.window.Query(s.cfg.Now(), window, n)
}

// Save writes the aggregate as a versioned, checksummed envelope (read
// lock: serialization does not mutate the database). Sketch state is
// derived and NOT persisted; a reload reseeds it (NewSafeDBWith).
func (s *SafeDB) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Save(w)
}

// Report renders the hot-instruction table (read lock; exact path).
func (s *SafeDB) Report(prog *isa.Program, n int) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Report(prog, n)
}

// copyAccum deep-copies an accumulator so the result shares no slices
// with the source.
func copyAccum(a *PCAccum) PCAccum {
	out := *a
	if a.Addrs != nil {
		out.Addrs = append([]uint64(nil), a.Addrs...)
	}
	if a.PairMetrics != nil {
		out.PairMetrics = append([]uint64(nil), a.PairMetrics...)
	}
	return out
}
