package profile

import (
	"io"
	"sync"

	"profileme/internal/core"
	"profileme/internal/isa"
)

// SafeDB wraps a DB with an RWMutex so one aggregate can be shared
// between concurrent ingesters (Merge, RecordLoss) and readers
// (estimator queries, reports, Save). It is the concurrency boundary the
// pmsimd service builds on: a plain DB stays single-owner (see the DB doc
// comment), and the moment two goroutines need the same database, it goes
// behind a SafeDB.
//
// Reader methods never leak interior pointers: accumulators are returned
// by value with their slices deep-copied, so a caller can hold a result
// across later merges without racing the writers.
type SafeDB struct {
	mu sync.RWMutex
	db *DB
}

// NewSafeDB wraps db. The caller must hand over ownership: after this
// call, all access to db goes through the wrapper.
func NewSafeDB(db *DB) *SafeDB { return &SafeDB{db: db} }

// SamplingConfig returns the wrapped database's sampling configuration —
// what an incoming shard must match to be mergeable.
func (s *SafeDB) SamplingConfig() (interval float64, window, width int, tNear int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.S, s.db.W, s.db.C, s.db.TNear
}

// Merge folds a shard database into the aggregate (write lock). The
// shard must not be accessed concurrently by anyone else; ownership of
// its counts transfers to the aggregate.
func (s *SafeDB) Merge(other *DB) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Merge(other)
}

// Add folds one sample into the aggregate (write lock).
func (s *SafeDB) Add(smp core.Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.Add(smp)
}

// RecordLoss notes n captured-but-never-delivered samples (write lock).
func (s *SafeDB) RecordLoss(n uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.RecordLoss(n)
}

// ReverseLoss retracts n samples previously recorded as loss (write
// lock) — see DB.ReverseLoss.
func (s *SafeDB) ReverseLoss(n uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.ReverseLoss(n)
}

// Samples returns the number of delivered samples.
func (s *SafeDB) Samples() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Samples()
}

// Pairs returns the number of paired samples.
func (s *SafeDB) Pairs() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Pairs()
}

// Lost returns the total samples known lost before aggregation.
func (s *SafeDB) Lost() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Lost()
}

// CorruptRejected returns the count of delivered samples rejected as
// damaged.
func (s *SafeDB) CorruptRejected() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.CorruptRejected()
}

// LossRate returns the fraction of captured samples that never made it
// into the aggregate.
func (s *SafeDB) LossRate() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.LossRate()
}

// Counters is the cheap whole-aggregate rollup: plain totals, no per-PC
// state.
type Counters struct {
	Samples         uint64
	Pairs           uint64
	Lost            uint64
	CorruptRejected uint64
	LossRate        float64
}

// CountersSnapshot returns every scalar counter under one read lock and
// with no deep copies — the read path for /v1/stats and readiness
// polls, which must stay O(1) and never contend with merges the way the
// per-PC snapshot methods (HotPCs, Get) necessarily do.
func (s *SafeDB) CountersSnapshot() Counters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Counters{
		Samples:         s.db.Samples(),
		Pairs:           s.db.Pairs(),
		Lost:            s.db.Lost(),
		CorruptRejected: s.db.CorruptRejected(),
		LossRate:        s.db.LossRate(),
	}
}

// EstimatedCount estimates how many times pc was fetched, loss-corrected.
func (s *SafeDB) EstimatedCount(pc uint64) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.EstimatedCount(pc)
}

// EstimatedEventCount estimates occurrences of ev at pc, loss-corrected.
func (s *SafeDB) EstimatedEventCount(pc uint64, ev core.Event) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.EstimatedEventCount(pc, ev)
}

// PCs returns all profiled PCs in ascending order.
func (s *SafeDB) PCs() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.PCs()
}

// Get returns a deep copy of the accumulator for pc; ok is false when the
// PC has never been sampled.
func (s *SafeDB) Get(pc uint64) (PCAccum, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a := s.db.Get(pc)
	if a == nil {
		return PCAccum{}, false
	}
	return copyAccum(a), true
}

// HotPCs returns deep copies of the n hottest accumulators, descending by
// sample count.
func (s *SafeDB) HotPCs(n int) []PCAccum {
	s.mu.RLock()
	defer s.mu.RUnlock()
	accs := s.db.HotPCs(n)
	out := make([]PCAccum, len(accs))
	for i, a := range accs {
		out[i] = copyAccum(a)
	}
	return out
}

// Save writes the aggregate as a versioned, checksummed envelope (read
// lock: serialization does not mutate the database).
func (s *SafeDB) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Save(w)
}

// Report renders the hot-instruction table.
func (s *SafeDB) Report(prog *isa.Program, n int) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Report(prog, n)
}

// copyAccum deep-copies an accumulator so the result shares no slices
// with the live database.
func copyAccum(a *PCAccum) PCAccum {
	out := *a
	if a.Addrs != nil {
		out.Addrs = append([]uint64(nil), a.Addrs...)
	}
	if a.PairMetrics != nil {
		out.PairMetrics = append([]uint64(nil), a.PairMetrics...)
	}
	return out
}
