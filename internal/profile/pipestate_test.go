package profile

import (
	"strings"
	"testing"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

func TestPipelineProfileSynthetic(t *testing.T) {
	pp := NewPipelineProfile(0x10, 40, -5, 20)
	// Target fetched at cycle 100; partner fetch 102, map 104, issue 108,
	// retire-ready 110, retire 112.
	target := rec(0x10, true, 100, 101, 102, 103, 120, 125)
	partner := rec(0x20, true, 102, 104, 106, 108, 110, 112)
	pp.Add(core.Sample{First: target, Second: partner, Paired: true})

	if pp.Pairs() != 1 {
		t.Fatalf("pairs = %d", pp.Pairs())
	}
	// At delta 3 (cycle 103) the partner is in front-end (fetch 102 ..
	// map 104).
	v, ok := pp.Occupancy(3, PhaseFrontEnd)
	if !ok || v != 40 { // count 1 x W/pairs = 40
		t.Fatalf("front-end occupancy = %v, %v", v, ok)
	}
	// At delta 6 (cycle 106) it waits in the queue (map 104 .. issue 108).
	if v, _ := pp.Occupancy(6, PhaseQueue); v != 40 {
		t.Fatalf("queue occupancy = %v", v)
	}
	// At delta 9 it executes; at delta 11 it waits to retire.
	if v, _ := pp.Occupancy(9, PhaseExecute); v != 40 {
		t.Fatalf("execute occupancy = %v", v)
	}
	if v, _ := pp.Occupancy(11, PhaseWaitRetire); v != 40 {
		t.Fatalf("wait-retire occupancy = %v", v)
	}
	// Outside its residency, zero.
	if v, _ := pp.Occupancy(-3, PhaseQueue); v != 0 {
		t.Fatalf("early occupancy = %v", v)
	}
	if v, _ := pp.TotalOccupancy(6); v != 40 {
		t.Fatalf("total = %v", v)
	}
	if _, ok := pp.Occupancy(999, PhaseQueue); ok {
		t.Fatal("out-of-range delta accepted")
	}
	if !strings.Contains(pp.Render(5), "queue") {
		t.Fatal("render")
	}
}

func TestPipelineProfileBothDirections(t *testing.T) {
	pp := NewPipelineProfile(0x10, 40, -10, 10)
	// Target as Second: partner fetched before it.
	partner := rec(0x20, true, 90, 91, 92, 93, 94, 95)
	target := rec(0x10, true, 100, 101, 102, 103, 104, 105)
	pp.Add(core.Sample{First: partner, Second: target, Paired: true})
	if pp.Pairs() != 1 {
		t.Fatalf("pairs = %d", pp.Pairs())
	}
	// Partner executed at cycle 93 = delta -7.
	if v, _ := pp.Occupancy(-7, PhaseExecute); v != 40 {
		t.Fatalf("backward-view occupancy = %v", v)
	}
}

func TestPipelineProfileOnFigure7Loops(t *testing.T) {
	// Around a serial-loop instruction the machine is nearly empty of
	// *executing* neighbors; around the high-ILP loop's instruction the
	// occupancy is much higher.
	prog := workload.Figure7Program(2500)
	loops := workload.Figure7Loops(prog)

	profileAt := func(pc uint64) *PipelineProfile {
		pp := NewPipelineProfile(pc, 80, 0, 1)
		unit := core.MustNewUnit(core.Config{
			Paired: true, MeanInterval: 30, Window: 80, BufferDepth: 64,
			CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 13,
		})
		ccfg := cpu.DefaultConfig()
		ccfg.InterruptCost = 0
		src := sim.NewMachineSource(sim.New(prog), 0)
		pipe, err := cpu.New(prog, src, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		pipe.AttachProfileMe(unit, pp.Handler())
		if _, err := pipe.Run(0); err != nil {
			t.Fatal(err)
		}
		return pp
	}

	serialPC := loops["A-serial"][0]
	parallelPC := loops["C-parallel"][0] + 3*4 // an add amid the parallel work
	ppA := profileAt(serialPC)
	ppC := profileAt(parallelPC)
	if ppA.Pairs() < 20 || ppC.Pairs() < 20 {
		t.Fatalf("too few pair views: %d / %d", ppA.Pairs(), ppC.Pairs())
	}
	// The reconstructed state composition is the signal: around the
	// serial-loop instruction the issue queue is clogged with neighbors
	// waiting on the dependence chain, while around the high-ILP
	// instruction operands are ready and the queue stays nearly empty.
	qA, _ := ppA.Occupancy(0, PhaseQueue)
	eA, _ := ppA.Occupancy(0, PhaseExecute)
	qC, _ := ppC.Occupancy(0, PhaseQueue)
	if qA < 3*eA {
		t.Fatalf("serial loop state not queue-dominated: queue %.1f, execute %.1f", qA, eA)
	}
	if qA < 2.5*qC+1 {
		t.Fatalf("serial loop queue occupancy %.1f not well above parallel %.1f", qA, qC)
	}
}
