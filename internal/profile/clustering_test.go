package profile

import (
	"testing"

	"profileme/internal/asm"
	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/sim"
)

// TestConcurrencyClusteringByMissStatus exercises the §5.2.4 clustering
// idea: "it may be useful to compare the average concurrency level when
// instruction I hits in the cache with the concurrency level when I
// suffers a cache miss". The profiling software routes samples into two
// databases keyed by the sampled load's D-cache-miss bit; the
// neighborhood-IPC estimate around the load must be clearly lower for the
// miss cluster.
func TestConcurrencyClusteringByMissStatus(t *testing.T) {
	// The load alternates between a small resident region (hits) and a
	// large strided region (misses); a dependent consumer serializes the
	// loop on every miss, collapsing nearby concurrency.
	prog := asm.MustAssemble(`
.proc main
    lda  r1, 120000(zero)
    lda  r16, small(zero)
    lda  r17, 0x200000(zero)
loop:
    and  r6, r1, #1
    beq  r6, hitside
    ld   r2, 0(r17)             ; miss side: 8 KB stride over 4 MB
    add  r17, r17, #8192
    and  r17, r17, #0x3ffff8
    or   r17, r17, #0x200000
    br   consume
hitside:
    ld   r2, 0(r16)             ; hit side: one resident line
consume:
    add  r3, r2, r3             ; consumer of the loaded value
    add  r4, r4, #1
    add  r5, r5, #1
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp
.data
.org 0x20000
small:
    .word 5
`)
	var missLoad, hitLoad uint64
	for i, in := range prog.Insts {
		if in.Op != isa.OpLd {
			continue
		}
		pc := uint64(i) * isa.InstBytes
		if in.Rb == 17 {
			missLoad = pc
		} else {
			hitLoad = pc
		}
	}
	if missLoad == 0 || hitLoad == 0 {
		t.Fatal("loads not found")
	}

	const (
		interval = 50
		window   = 80
	)
	dbMiss := NewDB(interval, window, 4)
	dbHit := NewDB(interval, window, 4)
	unit := core.MustNewUnit(core.Config{
		Paired: true, MeanInterval: interval, Window: window, BufferDepth: 32,
		CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 21,
	})
	ccfg := cpu.DefaultConfig()
	ccfg.InterruptCost = 0
	src := sim.NewMachineSource(sim.New(prog), 0)
	pipe, err := cpu.New(prog, src, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe.AttachProfileMe(unit, func(ss []core.Sample) {
		for _, s := range ss {
			// Cluster on the *first* record's miss status; the paper's
			// per-instruction clustering, applied by software.
			if s.First.Events.Has(core.EvDCacheMiss) {
				dbMiss.Add(s)
			} else {
				dbHit.Add(s)
			}
		}
	})
	if _, err := pipe.Run(0); err != nil {
		t.Fatal(err)
	}

	missIPC, okM := dbMiss.NeighborhoodIPC(missLoad)
	hitIPC, okH := dbHit.NeighborhoodIPC(hitLoad)
	if !okM || !okH {
		t.Fatalf("missing estimates: miss=%v hit=%v (samples %d/%d)",
			okM, okH, dbMiss.Samples(), dbHit.Samples())
	}
	if hitIPC < missIPC*1.5 {
		t.Fatalf("clustering shows no contrast: hit-cluster IPC %.2f vs miss-cluster %.2f",
			hitIPC, missIPC)
	}
}
