package profile

import "testing"

// TestReverseLoss: reversal retracts exactly what was recorded, clamps
// at zero instead of underflowing, and re-centres the estimators (loss
// rate back to 0 once everything recorded is reversed).
func TestReverseLoss(t *testing.T) {
	db := NewDB(16, 0, 4)
	db.RecordLoss(10)
	db.ReverseLoss(4)
	if got := db.Lost(); got != 6 {
		t.Fatalf("lost %d after reversing 4 of 10, want 6", got)
	}
	db.ReverseLoss(100)
	if got := db.Lost(); got != 0 {
		t.Fatalf("lost %d after over-reversal, want 0 (clamped)", got)
	}
	if got := db.LossRate(); got != 0 {
		t.Fatalf("loss rate %g after full reversal, want 0", got)
	}
}

func TestSafeDBReverseLoss(t *testing.T) {
	db := NewSafeDB(NewDB(16, 0, 4))
	db.RecordLoss(8)
	db.ReverseLoss(8)
	if got := db.Lost(); got != 0 {
		t.Fatalf("lost %d, want 0", got)
	}
}
