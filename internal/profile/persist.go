package profile

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Typed persistence failures. LoadDB wraps every failure in exactly one of
// these, so callers can distinguish a damaged file from a stale format
// with errors.Is and react (retry, re-collect, run a migration) instead of
// parsing message text.
var (
	// ErrCorrupt: the bytes are not a profile database — bad magic,
	// checksum mismatch, or an undecodable payload.
	ErrCorrupt = errors.New("profile: database corrupt")
	// ErrTruncated: the stream ended before the envelope said it would
	// (interrupted Save, partial copy).
	ErrTruncated = errors.New("profile: database truncated")
	// ErrVersionSkew: a well-formed database written by a different
	// format version, including pre-envelope (naked gob) files.
	ErrVersionSkew = errors.New("profile: database version skew")
)

// The on-disk envelope: magic, format version, payload length, gob
// payload, CRC32-C of the payload. The checksum turns silent bit rot and
// truncation into typed load errors instead of garbage decodes.
const (
	dbMagic   = "PMDB"
	dbVersion = 1
	// maxImageBytes caps the declared payload so a forged length field
	// cannot drive allocation (a compact per-PC image is megabytes, not
	// gigabytes).
	maxImageBytes = 1 << 28
	headerBytes   = 16 // magic[4] + version u32 + payload length u64
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// dbImage is the serialized form of a DB (the DCPI-style on-disk profile:
// counts and sums only, no raw samples). Custom pair-metric functions are
// not serializable; their names and counts survive, and a loaded database
// can be queried but accumulates further custom metrics only after the
// functions are re-registered via RestorePairMetrics.
type dbImage struct {
	S           float64
	W, C        int
	TNear       int64
	RetainAddrs int
	Samples     uint64
	Pairs       uint64
	Lost        uint64
	CorruptRej  uint64
	MetricNames []string
	Accums      []PCAccum
}

// Save writes the database as a versioned, checksummed envelope.
func (db *DB) Save(w io.Writer) error {
	img := dbImage{
		S: db.S, W: db.W, C: db.C, TNear: db.TNear, RetainAddrs: db.RetainAddrs,
		Samples: db.samples, Pairs: db.pairs,
		Lost: db.lost, CorruptRej: db.corruptRejected,
		MetricNames: db.metricNames,
	}
	for _, pc := range db.PCs() {
		img.Accums = append(img.Accums, *db.byPC[pc])
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(img); err != nil {
		return fmt.Errorf("profile: save: %w", err)
	}
	var hdr [headerBytes]byte
	copy(hdr[0:4], dbMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], dbVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("profile: save: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("profile: save: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload.Bytes(), crcTable))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("profile: save: %w", err)
	}
	return nil
}

// LoadDB reads a database written by Save. Any failure is typed: corrupt
// or truncated input and version skew (including pre-envelope naked-gob
// databases) return errors matching ErrCorrupt, ErrTruncated or
// ErrVersionSkew — never a panic, a garbage database, or an unbounded
// allocation.
func LoadDB(r io.Reader) (*DB, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("profile: load: header: %w", ErrTruncated)
	}
	if string(hdr[0:4]) != dbMagic {
		// Pre-envelope databases were naked gob streams. If the bytes
		// decode as one, this is an old format, not damage.
		legacy := io.MultiReader(bytes.NewReader(hdr[:]), io.LimitReader(r, maxImageBytes))
		var img dbImage
		if gob.NewDecoder(legacy).Decode(&img) == nil {
			return nil, fmt.Errorf("profile: load: unversioned pre-v%d database: %w",
				dbVersion, ErrVersionSkew)
		}
		return nil, fmt.Errorf("profile: load: bad magic: %w", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != dbVersion {
		return nil, fmt.Errorf("profile: load: format v%d, this build reads v%d: %w",
			v, dbVersion, ErrVersionSkew)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > maxImageBytes {
		return nil, fmt.Errorf("profile: load: declared payload %d exceeds %d: %w",
			n, maxImageBytes, ErrCorrupt)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("profile: load: payload: %w", ErrTruncated)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("profile: load: checksum: %w", ErrTruncated)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("profile: load: checksum %08x != %08x: %w", got, want, ErrCorrupt)
	}
	var img dbImage
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&img); err != nil {
		return nil, fmt.Errorf("profile: load: decode: %v: %w", err, ErrCorrupt)
	}
	if !(img.S >= 0) || img.W < 0 || img.C < 0 || img.RetainAddrs < 0 {
		return nil, fmt.Errorf("profile: load: impossible configuration: %w", ErrCorrupt)
	}
	db := NewDB(img.S, img.W, img.C)
	db.TNear = img.TNear
	db.RetainAddrs = img.RetainAddrs
	db.samples = img.Samples
	db.pairs = img.Pairs
	db.lost = img.Lost
	db.corruptRejected = img.CorruptRej
	db.metricNames = img.MetricNames
	db.metricFns = make([]OverlapFunc, len(img.MetricNames)) // placeholders
	for i := range img.Accums {
		a := img.Accums[i]
		db.byPC[a.PC] = &a
	}
	return db, nil
}

// RestorePairMetrics re-binds custom metric functions after LoadDB; names
// must match the registered order exactly.
func (db *DB) RestorePairMetrics(fns map[string]OverlapFunc) error {
	for i, name := range db.metricNames {
		f, ok := fns[name]
		if !ok {
			return fmt.Errorf("profile: no function for metric %q", name)
		}
		db.metricFns[i] = f
	}
	return nil
}

// Merge folds other into db (multi-run aggregation; both databases must
// share the sampling configuration and metric registrations).
func (db *DB) Merge(other *DB) error {
	if db == other {
		// Iterating other.byPC while acc() mutates the same map is
		// undefined; a fleet bug that hands the aggregate to itself must
		// fail loudly, not double-count or corrupt the map.
		return fmt.Errorf("profile: merge: cannot merge a database into itself")
	}
	if db.S != other.S || db.W != other.W || db.C != other.C || db.TNear != other.TNear {
		return fmt.Errorf("profile: merge: configurations differ")
	}
	if len(db.metricNames) != len(other.metricNames) {
		return fmt.Errorf("profile: merge: metric sets differ")
	}
	for i := range db.metricNames {
		if db.metricNames[i] != other.metricNames[i] {
			return fmt.Errorf("profile: merge: metric %d differs (%q vs %q)",
				i, db.metricNames[i], other.metricNames[i])
		}
	}
	db.samples += other.samples
	db.pairs += other.pairs
	db.lost += other.lost
	db.corruptRejected += other.corruptRejected
	for pc, src := range other.byPC {
		dst := db.acc(pc)
		dst.Samples += src.Samples
		for i := range dst.Events {
			dst.Events[i] += src.Events[i]
		}
		for i := range dst.LatSum {
			dst.LatSum[i] += src.LatSum[i]
			dst.LatCount[i] += src.LatCount[i]
		}
		dst.MemLatSum += src.MemLatSum
		dst.MemLatCount += src.MemLatCount
		dst.InProgressSum += src.InProgressSum
		dst.InProgressCount += src.InProgressCount
		dst.UsefulOverlap += src.UsefulOverlap
		dst.PairSamples += src.PairSamples
		dst.RetiredNear += src.RetiredNear
		if room := db.RetainAddrs - len(dst.Addrs); room > 0 && len(src.Addrs) > 0 {
			// Copy before appending: the slice must not share the source
			// database's backing array, or mutating one profile after a
			// merge would silently rewrite the other.
			take := src.Addrs
			if len(take) > room {
				take = take[:room]
			}
			buf := make([]uint64, len(take))
			copy(buf, take)
			dst.Addrs = append(dst.Addrs, buf...)
		}
		if len(src.PairMetrics) > 0 {
			if dst.PairMetrics == nil {
				dst.PairMetrics = make([]uint64, len(src.PairMetrics))
			}
			for i := range src.PairMetrics {
				dst.PairMetrics[i] += src.PairMetrics[i]
			}
		}
	}
	return nil
}
