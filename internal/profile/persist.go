package profile

import (
	"encoding/gob"
	"fmt"
	"io"
)

// dbImage is the serialized form of a DB (the DCPI-style on-disk profile:
// counts and sums only, no raw samples). Custom pair-metric functions are
// not serializable; their names and counts survive, and a loaded database
// can be queried but accumulates further custom metrics only after the
// functions are re-registered via RestorePairMetrics.
type dbImage struct {
	S           float64
	W, C        int
	TNear       int64
	RetainAddrs int
	Samples     uint64
	Pairs       uint64
	MetricNames []string
	Accums      []PCAccum
}

// Save writes the database in a compact binary form.
func (db *DB) Save(w io.Writer) error {
	img := dbImage{
		S: db.S, W: db.W, C: db.C, TNear: db.TNear, RetainAddrs: db.RetainAddrs,
		Samples: db.samples, Pairs: db.pairs,
		MetricNames: db.metricNames,
	}
	for _, pc := range db.PCs() {
		img.Accums = append(img.Accums, *db.byPC[pc])
	}
	return gob.NewEncoder(w).Encode(img)
}

// LoadDB reads a database written by Save.
func LoadDB(r io.Reader) (*DB, error) {
	var img dbImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("profile: load: %w", err)
	}
	db := NewDB(img.S, img.W, img.C)
	db.TNear = img.TNear
	db.RetainAddrs = img.RetainAddrs
	db.samples = img.Samples
	db.pairs = img.Pairs
	db.metricNames = img.MetricNames
	db.metricFns = make([]OverlapFunc, len(img.MetricNames)) // placeholders
	for i := range img.Accums {
		a := img.Accums[i]
		db.byPC[a.PC] = &a
	}
	return db, nil
}

// RestorePairMetrics re-binds custom metric functions after LoadDB; names
// must match the registered order exactly.
func (db *DB) RestorePairMetrics(fns map[string]OverlapFunc) error {
	for i, name := range db.metricNames {
		f, ok := fns[name]
		if !ok {
			return fmt.Errorf("profile: no function for metric %q", name)
		}
		db.metricFns[i] = f
	}
	return nil
}

// Merge folds other into db (multi-run aggregation; both databases must
// share the sampling configuration and metric registrations).
func (db *DB) Merge(other *DB) error {
	if db.S != other.S || db.W != other.W || db.C != other.C || db.TNear != other.TNear {
		return fmt.Errorf("profile: merge: configurations differ")
	}
	if len(db.metricNames) != len(other.metricNames) {
		return fmt.Errorf("profile: merge: metric sets differ")
	}
	for i := range db.metricNames {
		if db.metricNames[i] != other.metricNames[i] {
			return fmt.Errorf("profile: merge: metric %d differs (%q vs %q)",
				i, db.metricNames[i], other.metricNames[i])
		}
	}
	db.samples += other.samples
	db.pairs += other.pairs
	for pc, src := range other.byPC {
		dst := db.acc(pc)
		dst.Samples += src.Samples
		for i := range dst.Events {
			dst.Events[i] += src.Events[i]
		}
		for i := range dst.LatSum {
			dst.LatSum[i] += src.LatSum[i]
			dst.LatCount[i] += src.LatCount[i]
		}
		dst.MemLatSum += src.MemLatSum
		dst.MemLatCount += src.MemLatCount
		dst.InProgressSum += src.InProgressSum
		dst.InProgressCount += src.InProgressCount
		dst.UsefulOverlap += src.UsefulOverlap
		dst.PairSamples += src.PairSamples
		dst.RetiredNear += src.RetiredNear
		if room := db.RetainAddrs - len(dst.Addrs); room > 0 && len(src.Addrs) > 0 {
			take := src.Addrs
			if len(take) > room {
				take = take[:room]
			}
			dst.Addrs = append(dst.Addrs, take...)
		}
		if len(src.PairMetrics) > 0 {
			if dst.PairMetrics == nil {
				dst.PairMetrics = make([]uint64, len(src.PairMetrics))
			}
			for i := range src.PairMetrics {
				dst.PairMetrics[i] += src.PairMetrics[i]
			}
		}
	}
	return nil
}
