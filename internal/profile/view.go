package profile

import (
	"time"
)

// View is one epoch of the aggregate's published read state: an
// immutable, atomically-swapped snapshot that serves the hot query path
// with zero locking. SafeDB publishes a new View after every write —
// counters on every write, sketch rows after every merge — and readers
// load the latest with SafeDB.View().
//
// Ownership rule: a View and everything reachable from it is READ-ONLY
// and shared by every reader holding it. Callers must not mutate rows,
// accumulators, or slices; take copies (SafeDB.HotPCs does) before
// mutating. In exchange a View may be retained indefinitely — it is
// never recycled, and later writes publish fresh Views instead of
// touching this one.
type View struct {
	// Epoch increments with every published view; readers can use it to
	// detect progress and order snapshots.
	Epoch uint64
	// When is the publish time.
	When time.Time

	// Counters is the whole-aggregate rollup as of Epoch (exact, not
	// sketched).
	Counters Counters

	// S and LossCorr snapshot the sampling interval and loss-correction
	// factor, so estimate math (count ~ samples * S * LossCorr) needs no
	// database access.
	S        float64
	LossCorr float64

	// TopK holds the sketch's hottest PCs in descending estimate order.
	// Row contents (Acc) are exact deep copies as of the epoch the rows
	// were last rebuilt; membership and order are approximate with the
	// bounds in HotView. TopKCap is the sketch capacity K.
	TopK    []HotView
	TopKCap int
	// SketchN is the total sample weight the sketch has observed and
	// Floor its current minimum count: any PC absent from TopK has a
	// true count of at most Floor, and Floor <= SketchN/K.
	SketchN uint64
	Floor   uint64

	// Latencies are the published percentile summaries, one per
	// adjacent-stage latency kind plus "inprogress" (fetch->retire) —
	// each within its RelError of the exact quantile over the stream the
	// sketch was fed (per-sample latencies on the Add path, sample-
	// weighted per-PC means on the merge path).
	Latencies []QuantileSummary

	byPC map[uint64]*HotView
}

// HotView is one published hot-PC row: the sketch estimate with its
// error bound, plus an exact deep copy of the accumulator taken at
// publish time. Est >= Acc.Samples always (the sketch never
// undercounts); Est - MaxErr is a guaranteed lower bound on the true
// count.
type HotView struct {
	// Acc is a deep copy of the PC's accumulator as of the view epoch.
	// Read-only: shared by every reader of the view.
	Acc PCAccum
	// Est is the sketch's count estimate and MaxErr its worst-case
	// overcount (SSEntry semantics).
	Est    uint64
	MaxErr uint64
}

// Get returns the published row for pc, or nil when pc is not among the
// view's top-K. The returned row is shared and read-only.
func (v *View) Get(pc uint64) *HotView {
	if v == nil {
		return nil
	}
	return v.byPC[pc]
}

// SketchStats is the observability rollup for the sketch layer, served
// under "sketch" in /v1/stats.
type SketchStats struct {
	// Epoch is the current view epoch; Publishes counts full (row-
	// rebuilding) publications.
	Epoch     uint64 `json:"epoch"`
	Publishes uint64 `json:"publishes"`
	// TopK is the sketch capacity, TrackedPCs how many PCs it currently
	// holds, SketchN the total weight observed, and Floor the current
	// max-overcount bound.
	TopK       int    `json:"top_k"`
	TrackedPCs int    `json:"tracked_pcs"`
	SketchN    uint64 `json:"sketch_n"`
	Floor      uint64 `json:"floor"`
	// Window geometry: bucket count, bucket duration, and horizon.
	WindowBuckets   int   `json:"window_buckets"`
	WindowBucketMS  int64 `json:"window_bucket_ms"`
	WindowHorizonMS int64 `json:"window_horizon_ms"`
	// Latencies are the published percentile summaries (one per latency
	// kind plus "inprogress"), straight from the current view.
	Latencies []QuantileSummary `json:"latencies"`
}

// SketchConfig parameterizes SafeDB's streaming summaries. Zero values
// get usable defaults.
type SketchConfig struct {
	// TopK is the space-saving sketch capacity (default 512): hot-PC
	// queries for n <= TopK are served O(K) from the published view.
	TopK int
	// WindowBuckets and BucketDur define the windowed ring (defaults 60
	// buckets of 1s: a one-minute horizon at second granularity).
	WindowBuckets int
	BucketDur     time.Duration
	// Alpha is the quantile sketches' relative-error target (default
	// DefaultQuantileAlpha).
	Alpha float64
	// PublishEvery batches row republication on the per-sample Add path:
	// rows are rebuilt every PublishEvery adds (default 64) while
	// counters republish on every write. Merges always rebuild rows.
	PublishEvery int
	// Now is the clock (default time.Now); tests inject a fake.
	Now func() time.Time
}

func (c *SketchConfig) normalize() {
	if c.TopK <= 0 {
		c.TopK = 512
	}
	if c.WindowBuckets <= 0 {
		c.WindowBuckets = 60
	}
	if c.BucketDur <= 0 {
		c.BucketDur = time.Second
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = DefaultQuantileAlpha
	}
	if c.PublishEvery <= 0 {
		c.PublishEvery = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}
