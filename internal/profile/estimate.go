// Package profile is the profiling software of the reproduction (paper
// §5): it drains ProfileMe samples into a compact per-PC database
// (DCPI-style incremental aggregation), estimates instruction-level event
// frequencies with confidence intervals (§5.1), and analyzes paired
// samples for concurrency metrics — overlap, wasted issue slots (§5.2.3),
// and neighborhood IPC (§5.2.4).
//
// Two layers share the work. DB is the single-owner aggregation core:
// exact, not concurrency-safe, and its accessors (Get, HotPCs) return
// pointers that alias live state. SafeDB is the concurrent serving
// layer: writers go through its lock while readers get immutable,
// atomically-published snapshots (View) backed by streaming summaries —
// a space-saving top-K sketch (SpaceSaving), log-bucketed quantile
// sketches (QuantileSketch), and a time-windowed ring (WindowRing) — so
// hot-PC and percentile queries are O(K), never O(DB). DESIGN.md §13
// specifies the query & summary model; every approximate answer carries
// its error bound.
package profile

import (
	"math"

	"profileme/internal/core"
)

// EstimateCount scales a sample count to an estimated event count: with an
// average sampling interval of S fetched instructions, k samples having a
// property estimate k*S occurrences (§5.1: E[kS] = fN).
func EstimateCount(k uint64, s float64) float64 { return float64(k) * s }

// RelativeError returns the expected coefficient of variation of an
// estimate built from k property-samples: ≈ sqrt(1/k) (§5.1). It returns
// +Inf for k == 0.
func RelativeError(k uint64) float64 {
	if k == 0 {
		return math.Inf(1)
	}
	return 1 / math.Sqrt(float64(k))
}

// ConfidenceInterval returns the [lo, hi] interval around the estimate
// kS at z standard deviations (z = 1 covers ≈ 68%, z = 1.96 ≈ 95%).
func ConfidenceInterval(k uint64, s, z float64) (lo, hi float64) {
	est := EstimateCount(k, s)
	if k == 0 {
		return 0, z * s // zero samples still bound the count below ~zS
	}
	half := z * est * RelativeError(k)
	lo = est - half
	if lo < 0 {
		lo = 0
	}
	return lo, est + half
}

// RateEstimate estimates the rate of a property among executions of one
// instruction (e.g. per-instruction D-cache miss rate): the ratio of
// property-samples to total samples for that PC. Both sample counts must
// come from the same sampling stream, so the interval S cancels.
func RateEstimate(kProperty, kTotal uint64) float64 {
	if kTotal == 0 {
		return 0
	}
	return float64(kProperty) / float64(kTotal)
}

// OverlapFunc decides whether record b "overlaps" record a in whatever
// sense an analysis needs; the paper (§5.2.2) stresses that the overlap
// definition is a software choice, which is what makes paired sampling
// flexible.
type OverlapFunc func(a, b *core.Record) bool

// UsefulOverlap is the §5.2.3 definition: while a is in progress (fetch to
// retire-ready), b issues and subsequently retires.
func UsefulOverlap(a, b *core.Record) bool {
	from, to, ok := a.InProgress()
	if !ok {
		return false
	}
	if !b.Retired() {
		return false
	}
	issue := b.StageCycle[core.StageIssue]
	return issue >= from && issue < to
}

// BothInFlight reports whether the two instructions were simultaneously in
// the pipeline at any point (fetch to retire intervals intersect).
func BothInFlight(a, b *core.Record) bool {
	af, ar := a.StageCycle[core.StageFetch], a.StageCycle[core.StageRetire]
	bf, br := b.StageCycle[core.StageFetch], b.StageCycle[core.StageRetire]
	if af < 0 || ar < 0 || bf < 0 || br < 0 {
		return false
	}
	return af < br && bf < ar
}

// IssuedWhileWaiting reports whether b issued while a was sitting in the
// issue queue (mapped but not yet issued) — one of the paper's alternate
// overlap definitions.
func IssuedWhileWaiting(a, b *core.Record) bool {
	m, i := a.StageCycle[core.StageMap], a.StageCycle[core.StageIssue]
	bi := b.StageCycle[core.StageIssue]
	if m < 0 || i < 0 || bi < 0 {
		return false
	}
	return bi >= m && bi < i
}

// RetiredWithin returns an OverlapFunc that reports whether both
// instructions retired within t cycles of each other (used by the
// neighborhood-IPC estimate).
func RetiredWithin(t int64) OverlapFunc {
	return func(a, b *core.Record) bool {
		if !a.Retired() || !b.Retired() {
			return false
		}
		d := a.StageCycle[core.StageRetire] - b.StageCycle[core.StageRetire]
		if d < 0 {
			d = -d
		}
		return d <= t
	}
}
