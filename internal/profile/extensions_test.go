package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"profileme/internal/asm"
	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/sim"
)

// pairSample builds a paired sample at the given fetch distance.
func pairSample(aPC, bPC uint64, dist uint64) core.Sample {
	a := rec(aPC, true, 0, 1, 2, 3, 20, 25)
	b := rec(bPC, true, int64(dist), int64(dist)+1, int64(dist)+2, int64(dist)+3, int64(dist)+20, int64(dist)+25)
	return core.Sample{First: a, Second: b, Paired: true, FetchDistance: dist, FetchLatency: int64(dist)}
}

func TestEdgeProfileBasics(t *testing.T) {
	e := NewEdgeProfile(100, 50)
	e.Add(pairSample(0x10, 0x14, 1))
	e.Add(pairSample(0x10, 0x14, 1))
	e.Add(pairSample(0x10, 0x40, 1))                             // a taken branch edge
	e.Add(pairSample(0x10, 0x18, 2))                             // distance 2: ignored
	e.Add(core.Sample{First: rec(0x10, true, 0, 1, 2, 3, 4, 5)}) // unpaired: ignored

	if obs := e.Observations(0x10, 0x14); obs != 2 {
		t.Fatalf("observations = %d", obs)
	}
	if est := e.Estimate(0x10, 0x14); est != 2*100*50 {
		t.Fatalf("estimate = %v", est)
	}
	pairs, ones := e.Pairs()
	if pairs != 4 || ones != 3 {
		t.Fatalf("pairs=%d ones=%d", pairs, ones)
	}
	hot := e.Hot(10)
	if len(hot) != 2 || hot[0].Edge != (Edge{0x10, 0x14}) {
		t.Fatalf("hot = %+v", hot)
	}
	frac, ok := e.BranchBias(0x10, 0x40)
	if !ok || math.Abs(frac-1.0/3) > 1e-12 {
		t.Fatalf("bias = %v, %v", frac, ok)
	}
	if _, ok := e.BranchBias(0x999, 0x40); ok {
		t.Fatal("bias for unseen branch")
	}
	if out := e.Report(nil, 5); !strings.Contains(out, "distance 1") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestEdgeProfileAgainstGroundTruth(t *testing.T) {
	// A loop with a data-dependent diamond: the edge profile's estimated
	// branch bias must match the true taken fraction.
	prog := asm.MustAssemble(`
.proc main
    lda  r1, 60000(zero)
    lda  r5, 7(zero)
loop:
    mul  r5, r5, #48271
    srl  r6, r5, #16
    and  r6, r6, #7
    beq  r6, rare              ; taken ~1/8 of the time
    add  r3, r3, #1
    br   next
rare:
    add  r4, r4, #1
next:
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp`)
	const (
		interval = 60
		window   = 40
	)
	unit := core.MustNewUnit(core.Config{
		Paired: true, MeanInterval: interval, Window: window, BufferDepth: 32,
		CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 11,
	})
	edges := NewEdgeProfile(interval, window)
	ccfg := cpu.DefaultConfig()
	ccfg.InterruptCost = 0
	src := sim.NewMachineSource(sim.New(prog), 0)
	pipe, err := cpu.New(prog, src, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe.AttachProfileMe(unit, edges.Handler())
	if _, err := pipe.Run(0); err != nil {
		t.Fatal(err)
	}

	beqPC := uint64(0)
	for i, in := range prog.Insts {
		if in.Op == isa.OpBeq {
			beqPC = uint64(i) * isa.InstBytes
		}
	}
	rarePC, _ := prog.Label("rare")
	frac, ok := edges.BranchBias(beqPC, rarePC)
	if !ok {
		t.Fatal("branch never observed at distance 1")
	}
	if frac < 0.04 || frac > 0.25 {
		t.Fatalf("estimated taken fraction %.3f, true ~0.125", frac)
	}

	// The loop back-edge estimate should be near the true execution count.
	stats := pipe.PerPC()
	bnePC := uint64(len(prog.Insts)-2) * isa.InstBytes
	loopPC, _ := prog.Label("loop")
	trueCount := float64(stats[bnePC/isa.InstBytes].Taken)
	est := edges.Estimate(bnePC, loopPC)
	if est < trueCount/3 || est > trueCount*3 {
		t.Fatalf("back-edge estimate %.0f vs true %.0f", est, trueCount)
	}
}

func TestByProcAggregation(t *testing.T) {
	prog := asm.MustAssemble(`
.proc main
    add r20, ra, #0
    jsr ra, leaf
    ret (r20)
.endp
.proc leaf
    add r2, r2, #1
    ret (ra)
.endp`)
	db := NewDB(10, 0, 4)
	leafPC, _ := prog.Label("leaf")
	r := rec(leafPC, true, 0, 1, 2, 3, 8, 9)
	r.Events |= core.EvDCacheMiss
	db.Add(core.Sample{First: r})
	db.Add(core.Sample{First: rec(0, true, 0, 1, 2, 3, 4, 5)})

	procs := ByProc(db, prog)
	if len(procs) != 2 {
		t.Fatalf("procs = %+v", procs)
	}
	var leaf *ProcAccum
	for i := range procs {
		if procs[i].Name == "leaf" {
			leaf = &procs[i]
		}
	}
	if leaf == nil || leaf.Samples != 1 || leaf.DMiss != 1 {
		t.Fatalf("leaf = %+v", leaf)
	}
	if leaf.MeanLatency() != 8 {
		t.Fatalf("leaf latency = %v", leaf.MeanLatency())
	}
	out := ProcReport(db, prog)
	if !strings.Contains(out, "leaf") || !strings.Contains(out, "main") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestCustomPairMetric(t *testing.T) {
	db := NewDB(50, 10, 4)
	idx := db.RegisterPairMetric("both-in-flight", BothInFlight)
	a := rec(0x10, true, 0, 1, 2, 3, 20, 25)
	b := rec(0x20, true, 5, 6, 7, 8, 9, 26)
	db.Add(core.Sample{First: a, Second: b, Paired: true})
	far := rec(0x30, true, 100, 101, 102, 103, 104, 105)
	db.Add(core.Sample{First: a, Second: far, Paired: true})

	if names := db.PairMetricNames(); len(names) != 1 || names[0] != "both-in-flight" {
		t.Fatalf("names = %v", names)
	}
	est, ok := db.EstimatePairMetric(0x10, idx)
	if !ok {
		t.Fatal("no estimate")
	}
	// One of two partners overlapped: count 1, scaled by W*S = 500.
	if est != 500 {
		t.Fatalf("estimate = %v", est)
	}
	if _, ok := db.EstimatePairMetric(0x10, 99); ok {
		t.Fatal("bogus index accepted")
	}
}

func TestRegisterAfterSamplesPanics(t *testing.T) {
	db := NewDB(10, 10, 4)
	db.Add(core.Sample{First: rec(0x10, true, 0, 1, 2, 3, 4, 5)})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	db.RegisterPairMetric("late", BothInFlight)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB(100, 80, 4)
	db.RegisterPairMetric("near", RetiredWithin(10))
	r := rec(0x40, true, 0, 2, 3, 5, 9, 12)
	r.Events |= core.EvDCacheMiss
	db.Add(core.Sample{First: r})
	db.Add(pairSample(0x40, 0x44, 1))

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples() != db.Samples() || got.Pairs() != db.Pairs() {
		t.Fatalf("counts differ: %d/%d vs %d/%d", got.Samples(), got.Pairs(), db.Samples(), db.Pairs())
	}
	if got.S != db.S || got.W != db.W || got.C != db.C {
		t.Fatal("config lost")
	}
	a, b := db.Get(0x40), got.Get(0x40)
	if a.Samples != b.Samples || a.EventCount(core.EvDCacheMiss) != b.EventCount(core.EvDCacheMiss) {
		t.Fatalf("accums differ: %+v vs %+v", a, b)
	}
	if names := got.PairMetricNames(); len(names) != 1 || names[0] != "near" {
		t.Fatalf("metric names lost: %v", names)
	}
	if err := got.RestorePairMetrics(map[string]OverlapFunc{"near": RetiredWithin(10)}); err != nil {
		t.Fatal(err)
	}
	if err := got.RestorePairMetrics(map[string]OverlapFunc{"wrong": BothInFlight}); err == nil {
		t.Fatal("missing metric not caught")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := LoadDB(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMerge(t *testing.T) {
	mk := func() *DB {
		db := NewDB(100, 80, 4)
		r := rec(0x40, true, 0, 2, 3, 5, 9, 12)
		db.Add(core.Sample{First: r})
		return db
	}
	a, b := mk(), mk()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Samples() != 2 || a.Get(0x40).Samples != 2 {
		t.Fatalf("merge counts: %d, %d", a.Samples(), a.Get(0x40).Samples)
	}

	c := NewDB(999, 80, 4)
	if err := a.Merge(c); err == nil {
		t.Fatal("config mismatch not caught")
	}
	d := NewDB(100, 80, 4)
	d.RegisterPairMetric("x", BothInFlight)
	if err := a.Merge(d); err == nil {
		t.Fatal("metric mismatch not caught")
	}
}

func TestMergePreservesEstimates(t *testing.T) {
	// Merging two half-profiles must equal one combined profile.
	full := NewDB(10, 20, 4)
	h1 := NewDB(10, 20, 4)
	h2 := NewDB(10, 20, 4)
	for i := 0; i < 10; i++ {
		s := pairSample(0x10, 0x20, uint64(1+i%3))
		full.Add(s)
		if i%2 == 0 {
			h1.Add(s)
		} else {
			h2.Add(s)
		}
	}
	if err := h1.Merge(h2); err != nil {
		t.Fatal(err)
	}
	w1, t1, u1, _ := full.WastedSlots(0x10)
	w2, t2, u2, _ := h1.WastedSlots(0x10)
	if w1 != w2 || t1 != t2 || u1 != u2 {
		t.Fatalf("merged estimates differ: (%v %v %v) vs (%v %v %v)", w1, t1, u1, w2, t2, u2)
	}
}

func TestCallGraphFromEdges(t *testing.T) {
	prog := asm.MustAssemble(`
.proc main
    add r20, ra, #0
    lda r1, 2000(zero)
mloop:
    jsr ra, alpha
    jsr ra, beta
    sub r1, r1, #1
    bne r1, mloop
    ret (r20)
.endp
.proc alpha
    add r2, r2, #1
    ret (ra)
.endp
.proc beta
    add r3, r3, #1
    add r4, r4, #1
    ret (ra)
.endp`)
	const (
		interval = 23
		window   = 20
	)
	edges := NewEdgeProfile(interval, window)
	unit := core.MustNewUnit(core.Config{
		Paired: true, MeanInterval: interval, Window: window, BufferDepth: 32,
		CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 4,
	})
	ccfg := cpu.DefaultConfig()
	ccfg.InterruptCost = 0
	src := sim.NewMachineSource(sim.New(prog), 0)
	pipe, err := cpu.New(prog, src, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe.AttachProfileMe(unit, edges.Handler())
	if _, err := pipe.Run(0); err != nil {
		t.Fatal(err)
	}

	cg := edges.CallGraph(prog)
	if len(cg) == 0 {
		t.Fatal("no call edges observed")
	}
	seen := map[string]uint64{}
	for _, ce := range cg {
		if ce.CallerProc != "main" {
			t.Fatalf("unexpected caller %q", ce.CallerProc)
		}
		seen[ce.CalleeProc] = ce.Observed
	}
	if seen["alpha"] == 0 || seen["beta"] == 0 {
		t.Fatalf("call graph incomplete: %+v", cg)
	}
	// Both callees are invoked exactly once per iteration, so the edge
	// estimates should be within noise of each other and of the true
	// count (2000 each).
	for _, ce := range cg {
		if ce.Estimate < 400 || ce.Estimate > 8000 {
			t.Fatalf("%s->%s estimate %.0f, true 2000", ce.CallerProc, ce.CalleeProc, ce.Estimate)
		}
	}
}
