package profile

import (
	"sync"
	"time"
)

// WindowRing answers "hot PCs in the last N seconds" in O(K * buckets)
// instead of O(DB): a fixed ring of time buckets, each holding its own
// small space-saving sketch plus exact per-bucket sample counters. The
// ring advances lazily on writes; queries merge the buckets overlapping
// the requested window.
//
// Concurrency: the ring has its own RWMutex, separate from SafeDB's. A
// write (O(log K)) takes the write lock for the sketch update only — it
// never holds the lock for anything proportional to the database — and
// queries take the read lock, so windowed queries contend with the merge
// loop only for these O(log K) critical sections, never for an O(DB)
// copy. The unwindowed sketch path is fully lock-free (see View).
type WindowRing struct {
	mu        sync.RWMutex
	bucketDur time.Duration
	k         int
	buckets   []windowBucket
	head      int       // current bucket
	headStart time.Time // start of the current bucket's interval
	started   bool
}

type windowBucket struct {
	start   time.Time
	sk      *SpaceSaving
	samples uint64
}

// NewWindowRing builds a ring of n buckets of d each (horizon n*d),
// tracking k counters per bucket.
func NewWindowRing(n int, d time.Duration, k int) *WindowRing {
	if n < 1 {
		n = 1
	}
	if d <= 0 {
		d = time.Second
	}
	r := &WindowRing{bucketDur: d, k: k, buckets: make([]windowBucket, n)}
	for i := range r.buckets {
		r.buckets[i].sk = NewSpaceSaving(k)
	}
	return r
}

// Horizon returns the maximum lookback the ring can answer.
func (r *WindowRing) Horizon() time.Duration {
	return time.Duration(len(r.buckets)) * r.bucketDur
}

// BucketDur returns the ring's bucket granularity.
func (r *WindowRing) BucketDur() time.Duration { return r.bucketDur }

// Add folds weight w for pc into the bucket covering now.
func (r *WindowRing) Add(now time.Time, pc uint64, w uint64) {
	r.mu.Lock()
	r.advanceLocked(now)
	b := &r.buckets[r.head]
	b.sk.Add(pc, w)
	b.samples += w
	r.mu.Unlock()
}

// advanceLocked rotates the ring so the head bucket covers now. A long
// idle gap resets stale buckets without looping once per elapsed bucket.
func (r *WindowRing) advanceLocked(now time.Time) {
	if !r.started {
		r.started = true
		r.headStart = now.Truncate(r.bucketDur)
		r.buckets[r.head].start = r.headStart
		return
	}
	steps := 0
	for !now.Before(r.headStart.Add(r.bucketDur)) {
		if steps >= len(r.buckets) {
			// Everything in the ring is stale: reset in place.
			for i := range r.buckets {
				r.buckets[i] = windowBucket{sk: NewSpaceSaving(r.k)}
			}
			r.head = 0
			r.headStart = now.Truncate(r.bucketDur)
			r.buckets[0].start = r.headStart
			return
		}
		r.head = (r.head + 1) % len(r.buckets)
		r.headStart = r.headStart.Add(r.bucketDur)
		r.buckets[r.head] = windowBucket{start: r.headStart, sk: NewSpaceSaving(r.k)}
		steps++
	}
}

// WindowResult is one windowed hot-PC answer. Rows carry sketch
// estimates only (per-bucket rings keep no per-PC accumulators); Floor
// bounds the estimate error exactly like SpaceSaving.MinCount, summed
// over the merged buckets.
type WindowResult struct {
	// Window is the lookback actually served; Clamped is true when the
	// request exceeded the ring horizon and was clamped to it.
	Window  time.Duration
	Clamped bool
	// Buckets is how many ring buckets contributed.
	Buckets int
	// Samples is the exact number of samples recorded in those buckets.
	Samples uint64
	// Rows are the estimated hottest PCs in the window, descending.
	Rows []SSEntry
	// Floor is the merged sketch floor: any PC absent from Rows was seen
	// at most Floor times in the window, and no row overcounts by more
	// than its own Err.
	Floor uint64
}

// Query merges the buckets overlapping [now-window, now] and returns the
// top n rows. O(K * buckets); takes the ring's read lock only.
func (r *WindowRing) Query(now time.Time, window time.Duration, n int) WindowResult {
	res := WindowResult{Window: window}
	if window <= 0 {
		return res
	}
	if h := r.Horizon(); window > h {
		res.Window, res.Clamped = h, true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	cutoff := now.Add(-res.Window)
	var merged *SpaceSaving
	for i := range r.buckets {
		b := &r.buckets[i]
		if b.sk.N() == 0 && b.samples == 0 {
			continue
		}
		// A bucket contributes if any part of [start, start+dur) is
		// inside the window and it is not from a previous ring lap.
		if b.start.Add(r.bucketDur).Before(cutoff) || b.start.After(now) {
			continue
		}
		res.Buckets++
		res.Samples += b.samples
		if merged == nil {
			merged = Merge(b.sk, NewSpaceSaving(r.k))
		} else {
			merged = Merge(merged, b.sk)
		}
	}
	if merged == nil {
		return res
	}
	rows := merged.Items()
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	res.Rows = rows
	res.Floor = merged.MinCount()
	return res
}
