package profile

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"profileme/internal/core"
	"profileme/internal/stats"
)

func TestEstimateCountUnbiased(t *testing.T) {
	// Property-based check of §5.1: sample a synthetic population of N
	// instructions where a fraction f has property P at interval S; the
	// estimate kS must be within a few standard deviations of fN.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		const n = 200000
		s := float64(rng.IntRange(20, 200))
		frac := 0.05 + 0.5*rng.Float64()
		var k, actual uint64
		countdown := rng.Geometric(s)
		for i := 0; i < n; i++ {
			has := rng.Float64() < frac
			if has {
				actual++
			}
			countdown--
			if countdown == 0 {
				countdown = rng.Geometric(s)
				if has {
					k++
				}
			}
		}
		est := EstimateCount(k, s)
		if k == 0 {
			return true
		}
		sigma := est * RelativeError(k)
		diff := math.Abs(est - float64(actual))
		return diff < 5*sigma+s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeError(t *testing.T) {
	if !math.IsInf(RelativeError(0), 1) {
		t.Fatal("k=0 should be infinite error")
	}
	if got := RelativeError(100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError(100) = %v", got)
	}
	if RelativeError(4) <= RelativeError(16) {
		t.Fatal("error must shrink with more samples")
	}
}

func TestConfidenceInterval(t *testing.T) {
	lo, hi := ConfidenceInterval(100, 10, 1)
	if lo >= hi {
		t.Fatal("degenerate interval")
	}
	est := EstimateCount(100, 10)
	if est < lo || est > hi {
		t.Fatal("estimate outside its own interval")
	}
	if math.Abs((hi-est)-est*0.1) > 1e-9 {
		t.Fatalf("interval half-width wrong: %v", hi-est)
	}
	lo, _ = ConfidenceInterval(1, 10, 3)
	if lo < 0 {
		t.Fatal("negative lower bound not clamped")
	}
}

func TestRateEstimate(t *testing.T) {
	if RateEstimate(5, 0) != 0 {
		t.Fatal("division by zero")
	}
	if RateEstimate(5, 20) != 0.25 {
		t.Fatal("rate wrong")
	}
}

// rec builds a record with the given stage cycles (-1 = unset).
func rec(pc uint64, retired bool, cycles ...int64) core.Record {
	r := core.Record{PC: pc, LoadComplete: -1}
	for i := range r.StageCycle {
		r.StageCycle[i] = -1
	}
	for i, c := range cycles {
		if i < core.NumStages {
			r.StageCycle[core.Stage(i)] = c
		}
	}
	if retired {
		r.Events |= core.EvRetired
	}
	return r
}

func TestUsefulOverlap(t *testing.T) {
	// a: fetch 0, map 1, ready 2, issue 3, retire-ready 20, retire 25.
	a := rec(0x10, true, 0, 1, 2, 3, 20, 25)
	// b issues inside a's [0,20) window and retires.
	b := rec(0x20, true, 5, 6, 7, 8, 9, 26)
	if !UsefulOverlap(&a, &b) {
		t.Fatal("overlap not detected")
	}
	// b issues after a is retire-ready.
	late := rec(0x20, true, 5, 6, 7, 21, 22, 27)
	if UsefulOverlap(&a, &late) {
		t.Fatal("late issue counted as overlap")
	}
	// b aborted: not useful.
	aborted := rec(0x20, false, 5, 6, 7, 8, 9, 26)
	if UsefulOverlap(&a, &aborted) {
		t.Fatal("aborted partner counted as useful")
	}
	// a aborted (no retire-ready): no window.
	noWindow := rec(0x10, false, 0, 1, -1, -1, -1, 9)
	if UsefulOverlap(&noWindow, &b) {
		t.Fatal("aborted instruction has no in-progress window")
	}
}

func TestBothInFlight(t *testing.T) {
	a := rec(0x10, true, 0, 1, 2, 3, 20, 25)
	b := rec(0x20, true, 10, 11, 12, 13, 20, 30)
	if !BothInFlight(&a, &b) {
		t.Fatal("in-flight intersection missed")
	}
	c := rec(0x20, true, 26, 27, 28, 29, 30, 31)
	if BothInFlight(&a, &c) {
		t.Fatal("disjoint lifetimes overlapped")
	}
}

func TestIssuedWhileWaiting(t *testing.T) {
	// a waits in the queue cycles [1, 15).
	a := rec(0x10, true, 0, 1, 2, 15, 20, 25)
	b := rec(0x20, true, 3, 4, 5, 6, 7, 26)
	if !IssuedWhileWaiting(&a, &b) {
		t.Fatal("issue during wait missed")
	}
	c := rec(0x20, true, 3, 4, 5, 16, 17, 26)
	if IssuedWhileWaiting(&a, &c) {
		t.Fatal("issue after a's issue counted")
	}
}

func TestRetiredWithin(t *testing.T) {
	a := rec(0x10, true, 0, 1, 2, 3, 4, 100)
	b := rec(0x20, true, 0, 1, 2, 3, 4, 120)
	if !RetiredWithin(30)(&a, &b) || !RetiredWithin(30)(&b, &a) {
		t.Fatal("within-30 missed")
	}
	if RetiredWithin(10)(&a, &b) {
		t.Fatal("within-10 false positive")
	}
	ab := rec(0x20, false, 0, 1, 2, 3, 4, 110)
	if RetiredWithin(30)(&a, &ab) {
		t.Fatal("aborted partner counted")
	}
}

func TestDBSingleSampleAggregation(t *testing.T) {
	db := NewDB(100, 80, 4)
	r := rec(0x40, true, 0, 2, 3, 5, 9, 12)
	r.Events |= core.EvDCacheMiss | core.EvTaken
	db.Add(core.Sample{First: r})
	db.Add(core.Sample{First: r})
	miss := rec(0x40, false, 0, 2, -1, -1, -1, 4)
	db.Add(core.Sample{First: miss})

	a := db.Get(0x40)
	if a == nil || a.Samples != 3 {
		t.Fatalf("acc = %+v", a)
	}
	if a.Retired() != 2 {
		t.Fatalf("retired = %d", a.Retired())
	}
	if a.EventCount(core.EvDCacheMiss) != 2 {
		t.Fatal("dcache miss count")
	}
	// fetch->map latency available for all 3, later stages only for 2.
	if a.LatCount[0] != 3 || a.LatCount[3] != 2 {
		t.Fatalf("latency counts = %v", a.LatCount)
	}
	if got := a.MeanLatency(0); got != 2 {
		t.Fatalf("fetch->map mean = %v", got)
	}
	if got := db.EstimatedCount(0x40); got != 300 {
		t.Fatalf("estimated count = %v", got)
	}
	if got := db.EstimatedEventCount(0x40, core.EvDCacheMiss); got != 200 {
		t.Fatalf("estimated misses = %v", got)
	}
	if db.Samples() != 3 {
		t.Fatal("sample count")
	}
}

func TestDBEmptySlotSamplesIgnored(t *testing.T) {
	db := NewDB(10, 80, 4)
	empty := rec(0, false)
	empty.Events |= core.EvNoInstruction
	db.Add(core.Sample{First: empty})
	if len(db.PCs()) != 0 {
		t.Fatal("empty slot attributed to a PC")
	}
	if db.Samples() != 1 {
		t.Fatal("sample not counted at all")
	}
}

func TestDBPairedAggregation(t *testing.T) {
	db := NewDB(50, 10, 4)
	a := rec(0x10, true, 0, 1, 2, 3, 20, 25)
	b := rec(0x20, true, 5, 6, 7, 8, 9, 26)
	db.Add(core.Sample{First: a, Second: b, Paired: true, FetchDistance: 3, FetchLatency: 5})

	accA, accB := db.Get(0x10), db.Get(0x20)
	if accA == nil || accB == nil {
		t.Fatal("both PCs should be present")
	}
	if accA.PairSamples != 1 || accB.PairSamples != 1 {
		t.Fatal("pair accounting")
	}
	// b issued (8) inside a's window [0,20) and retired: U for a.
	if accA.UsefulOverlap != 1 {
		t.Fatal("useful overlap for first")
	}
	// a issued (3) inside b's window [5,9)? 3 < 5: no.
	if accB.UsefulOverlap != 0 {
		t.Fatal("useful overlap for second should be 0")
	}
	if db.Pairs() != 1 {
		t.Fatal("pair count")
	}

	wasted, total, useful, ok := db.WastedSlots(0x10)
	if !ok {
		t.Fatal("no wasted-slot estimate")
	}
	// L=20, C=4, S=50 => total = 20*4*50/2 = 2000. useful = 1*10*50 = 500.
	if total != 2000 || useful != 500 || wasted != 1500 {
		t.Fatalf("wasted=%v total=%v useful=%v", wasted, total, useful)
	}
}

func TestDBWastedSlotsClamped(t *testing.T) {
	db := NewDB(1, 1000, 4)
	a := rec(0x10, true, 0, 1, 2, 3, 4, 5) // tiny window
	b := rec(0x20, true, 0, 1, 2, 3, 4, 5)
	db.Add(core.Sample{First: a, Second: b, Paired: true})
	wasted, _, _, ok := db.WastedSlots(0x10)
	if !ok || wasted != 0 {
		t.Fatalf("wasted = %v, want clamp to 0", wasted)
	}
}

func TestDBNeighborhoodIPC(t *testing.T) {
	db := NewDB(50, 60, 4)
	db.TNear = 30
	a := rec(0x10, true, 0, 1, 2, 3, 4, 100)
	near := rec(0x20, true, 5, 6, 7, 8, 9, 110)
	far := rec(0x30, true, 5, 6, 7, 8, 9, 500)
	db.Add(core.Sample{First: a, Second: near, Paired: true})
	db.Add(core.Sample{First: a, Second: far, Paired: true})
	ipc, ok := db.NeighborhoodIPC(0x10)
	if !ok {
		t.Fatal("no estimate")
	}
	// fraction 0.5, W=60, T=30 => 1.0
	if math.Abs(ipc-1.0) > 1e-9 {
		t.Fatalf("ipc = %v", ipc)
	}
	if _, ok := db.NeighborhoodIPC(0x999); ok {
		t.Fatal("estimate for unseen PC")
	}
}

func TestDBHotPCsOrder(t *testing.T) {
	db := NewDB(10, 80, 4)
	for i := 0; i < 5; i++ {
		db.Add(core.Sample{First: rec(0x10, true, 0, 1, 2, 3, 4, 5)})
	}
	for i := 0; i < 2; i++ {
		db.Add(core.Sample{First: rec(0x20, true, 0, 1, 2, 3, 4, 5)})
	}
	hot := db.HotPCs(10)
	if len(hot) != 2 || hot[0].PC != 0x10 || hot[1].PC != 0x20 {
		t.Fatalf("hot order wrong: %+v", hot)
	}
	if got := db.HotPCs(1); len(got) != 1 {
		t.Fatal("limit ignored")
	}
}

func TestDBReportRenders(t *testing.T) {
	db := NewDB(10, 80, 4)
	r := rec(0x10, true, 0, 1, 2, 3, 4, 5)
	r.Events |= core.EvDCacheMiss
	db.Add(core.Sample{First: r})
	out := db.Report(nil, 10)
	if !strings.Contains(out, "0x10") || !strings.Contains(out, "samples") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestLatencyKindMetadata(t *testing.T) {
	if NumLatencyKinds != 5 {
		t.Fatal("latency kind count")
	}
	for i := 0; i < NumLatencyKinds; i++ {
		if LatencyKindName(i) == "" || LatencyKindDiagnosis(i) == "" {
			t.Fatalf("kind %d missing metadata", i)
		}
	}
}
