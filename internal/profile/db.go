package profile

import (
	"fmt"
	"sort"
	"strings"

	"profileme/internal/core"
	"profileme/internal/isa"
)

// latencyKinds are the adjacent-stage latencies the database aggregates —
// exactly the rows of the paper's Table 1.
var latencyKinds = []struct {
	Name     string
	From, To core.Stage
	Diagnose string
}{
	{"fetch->map", core.StageFetch, core.StageMap, "map stalls: no free registers or issue-queue slots"},
	{"map->data-ready", core.StageMap, core.StageDataReady, "stalls on data dependences"},
	{"data-ready->issue", core.StageDataReady, core.StageIssue, "execution resource contention"},
	{"issue->retire-ready", core.StageIssue, core.StageRetireReady, "execution latency"},
	{"retire-ready->retire", core.StageRetireReady, core.StageRetire, "stalls on prior unretired instructions"},
}

// NumLatencyKinds is the number of Table 1 adjacent-stage latencies.
const NumLatencyKinds = 5

// LatencyKindName returns the name of latency kind i.
func LatencyKindName(i int) string { return latencyKinds[i].Name }

// LatencyKindDiagnosis returns what a large value of latency kind i
// indicates (Table 1's explanation column).
func LatencyKindDiagnosis(i int) string { return latencyKinds[i].Diagnose }

// numEventKinds is the number of event bits the database counts per PC.
const numEventKinds = 11

// eventKinds lists the event bits the database counts per PC.
var eventKinds = [numEventKinds]core.Event{
	core.EvRetired, core.EvICacheMiss, core.EvITBMiss, core.EvDCacheMiss,
	core.EvDTBMiss, core.EvL2Miss, core.EvTaken, core.EvMispredict,
	core.EvOffPath, core.EvReplayTrap, core.EvResourceStall,
}

// PCAccum aggregates every sample seen for one static instruction:
// the DCPI-style compact representation (counts and sums, no raw samples).
//
// Copy-vs-alias: PCAccum is mostly a value type, but Addrs and
// PairMetrics are slices — a shallow copy of a live accumulator still
// shares them with the database. DB.Get and DB.HotPCs return live
// pointers (aliases); SafeDB.Get and SafeDB.HotPCs return deep copies
// that share nothing.
type PCAccum struct {
	PC      uint64
	Samples uint64 // samples naming this PC (first or second of a pair)
	Events  [numEventKinds]uint64

	// Latency sums and the number of samples contributing to each
	// (aborted samples lack later-stage timestamps).
	LatSum   [NumLatencyKinds]int64
	LatCount [NumLatencyKinds]uint64

	// Load issue -> value completion (Table 1's memory-system row).
	MemLatSum   int64
	MemLatCount uint64

	// InProgress sums fetch -> retire-ready latency (the L_I input of the
	// wasted-slots metric and the X axis of Figure 7).
	InProgressSum   int64
	InProgressCount uint64

	// Paired-sampling accumulators for the wasted-slots metric: U_I
	// (§5.2.3), counted incrementally.
	UsefulOverlap uint64 // U_I: pair-partners that usefully overlapped
	PairSamples   uint64 // samples of this PC that were part of a pair

	// RetiredNear counts pair-partners that retired within the database's
	// TNear cycles of this instruction (§5.2.4 neighborhood IPC).
	RetiredNear uint64

	// PairMetrics holds the counts of the database's registered custom
	// overlap metrics (§5.2.4: "any function that can be expressed as
	// f(I1, I2)"), indexed as registered.
	PairMetrics []uint64

	// Addrs retains up to DB.RetainAddrs sampled effective addresses in
	// arrival order — the raw material for the §7 reference-pattern
	// feedback (stride detection for prefetching, page-conflict
	// analysis).
	Addrs []uint64
}

// Retired returns the count of samples that retired.
func (a *PCAccum) Retired() uint64 { return a.Events[0] }

// EventCount returns the number of samples with ev set (ev must be one of
// the tracked kinds).
func (a *PCAccum) EventCount(ev core.Event) uint64 {
	for i, kind := range eventKinds {
		if kind == ev {
			return a.Events[i]
		}
	}
	return 0
}

// MeanLatency returns the average of latency kind i over contributing
// samples.
func (a *PCAccum) MeanLatency(i int) float64 {
	if a.LatCount[i] == 0 {
		return 0
	}
	return float64(a.LatSum[i]) / float64(a.LatCount[i])
}

// DB is the profile database: per-PC aggregation plus whole-run totals.
//
// Concurrency ownership rule: a DB is NOT safe for concurrent use. Every
// DB has exactly one owning goroutine at a time — the interrupt handler
// during accumulation, the supervisor during a merge — and ownership
// transfers only at a synchronization point (channel handoff, WaitGroup
// join). The moment two goroutines need the same database at once
// (concurrent ingest plus live queries, as in the pmsimd service), wrap
// it in a SafeDB instead; the race test in safedb_test.go pins that
// wrapper's guarantee.
type DB struct {
	// S is the mean sampling interval, for scaling estimates.
	S float64
	// W is the paired-sampling window (0 when unpaired).
	W int
	// C is the machine's sustained issue width (§5.2.3's C).
	C int
	// TNear is the cycle radius for the neighborhood-IPC estimate
	// (§5.2.4); DefaultTNear unless changed before adding samples.
	TNear int64
	// RetainAddrs caps how many sampled effective addresses are kept per
	// PC (0 = none). Memory-feedback analyses (§7) need a handful.
	RetainAddrs int

	byPC    map[uint64]*PCAccum
	samples uint64
	pairs   uint64

	// Loss accounting: lost counts samples the hardware captured but
	// never delivered (reported via RecordLoss), corruptRejected counts
	// delivered samples Add refused as damaged. Random losses leave the
	// delivered subset unbiased, so the Est* estimators scale by the
	// observed loss rate to stay centred (the paper's §4.3 argument that
	// random drops are acceptable, made operational).
	lost            uint64
	corruptRejected uint64

	metricNames []string
	metricFns   []OverlapFunc
}

// DefaultTNear is the default neighborhood radius, matching the paper's
// 30-cycle windowed-IPC measurements (§6).
const DefaultTNear = 30

// NewDB returns an empty database for a sampling configuration.
func NewDB(s float64, w, c int) *DB {
	return &DB{S: s, W: w, C: c, TNear: DefaultTNear, byPC: make(map[uint64]*PCAccum)}
}

// Handler adapts the database to a Pipeline.AttachProfileMe interrupt
// handler.
func (db *DB) Handler() func([]core.Sample) {
	return func(ss []core.Sample) {
		for _, s := range ss {
			db.Add(s)
		}
	}
}

// Samples returns the number of samples added.
func (db *DB) Samples() uint64 { return db.samples }

// Pairs returns the number of paired samples added.
func (db *DB) Pairs() uint64 { return db.pairs }

// RecordLoss notes n samples captured by the hardware but never delivered
// to software — buffer-overflow drops, register overwrites, suppressed
// interrupts (core.Stats.Lost after a run). The Est* estimators scale by
// the resulting loss rate.
func (db *DB) RecordLoss(n uint64) { db.lost += n }

// ReverseLoss retracts n samples previously reported via RecordLoss.
// The ingest service uses it when a shard that was refused at admission
// (and therefore loss-accounted) is retried and accepted later: the
// shard's captured samples move from the loss ledger into the delivered
// counts, and counting them in both would inflate the loss-correction
// factor. Reversing more than was recorded clamps at zero.
func (db *DB) ReverseLoss(n uint64) {
	if n > db.lost {
		n = db.lost
	}
	db.lost -= n
}

// Lost returns the total samples known lost before aggregation: upstream
// hardware losses plus corrupt samples Add rejected.
func (db *DB) Lost() uint64 { return db.lost + db.corruptRejected }

// CorruptRejected returns how many delivered samples Add refused because
// their records violated hardware invariants (bit damage).
func (db *DB) CorruptRejected() uint64 { return db.corruptRejected }

// LossRate returns the fraction of captured samples that never made it
// into the database, 0 when nothing was lost.
func (db *DB) LossRate() float64 {
	l := db.Lost()
	if l == 0 {
		return 0
	}
	return float64(l) / float64(db.samples+l)
}

// lossCorrection is the factor that re-centres count estimators under
// random loss: delivered samples underestimate by (1 - lossRate), so
// estimates scale by captured/delivered. With no recorded loss it is 1 and
// every estimator reduces to the paper's k*S form.
func (db *DB) lossCorrection() float64 {
	l := db.Lost()
	if l == 0 || db.samples == 0 {
		return 1
	}
	return float64(db.samples+l) / float64(db.samples)
}

// Add folds one ProfileMe sample into the database. This is the interrupt
// handler's work: O(1) per sample, no retained raw data. Paired samples
// are considered twice — once from each instruction's point of view — so
// that partner samples are distributed over the window both before and
// after each instruction (§5.2.2). For N-way samples (ways > 2) only the
// first pair feeds the pair metrics; callers with chain analyses consume
// Sample.Rest themselves.
func (db *DB) Add(s core.Sample) {
	if !recordSane(&s.First) || (s.Paired && !recordSane(&s.Second)) {
		db.corruptRejected++
		return
	}
	db.samples++
	if !s.Paired {
		db.addRecord(&s.First, nil)
		return
	}
	db.pairs++
	db.addRecord(&s.First, &s.Second)
	db.addRecord(&s.Second, &s.First)
}

// maxSaneCycle bounds believable timestamps: a flipped high bit in a cycle
// counter lands far beyond any simulated run length.
const maxSaneCycle = int64(1) << 48

// recordSane checks the invariants real hardware guarantees for every
// Profile Register read: only defined event bits and trap reasons, a
// plausible history width, and per-stage timestamps that are unset (-1) or
// monotonically non-decreasing through the pipe with a load's value
// arriving no earlier than its issue. Samples failing these checks are bit
// damage and are rejected rather than folded into the estimators. Low-bit
// timestamp damage is indistinguishable from timing jitter and passes —
// that is the graceful half of degradation.
func recordSane(r *core.Record) bool {
	if r.Events&^core.KnownEvents != 0 {
		return false
	}
	if !r.Trap.Known() {
		return false
	}
	if r.HistoryBits < 0 || r.HistoryBits > 64 {
		return false
	}
	last := int64(-1)
	for _, c := range r.StageCycle {
		if c < -1 || c > maxSaneCycle {
			return false
		}
		if c >= 0 {
			if c < last {
				return false
			}
			last = c
		}
	}
	if r.LoadComplete < -1 || r.LoadComplete > maxSaneCycle {
		return false
	}
	if r.LoadComplete >= 0 && r.StageCycle[core.StageIssue] >= 0 &&
		r.LoadComplete < r.StageCycle[core.StageIssue] {
		return false
	}
	return true
}

func (db *DB) acc(pc uint64) *PCAccum {
	a, ok := db.byPC[pc]
	if !ok {
		a = &PCAccum{PC: pc}
		db.byPC[pc] = a
	}
	return a
}

func (db *DB) addRecord(r *core.Record, partner *core.Record) {
	if r.Events.Has(core.EvNoInstruction) {
		return // empty fetch slot: no PC to attribute
	}
	a := db.acc(r.PC)
	a.Samples++
	for i, kind := range eventKinds {
		if r.Events.Has(kind) {
			a.Events[i]++
		}
	}
	for i, lk := range latencyKinds {
		if lat, ok := r.Latency(lk.From, lk.To); ok {
			a.LatSum[i] += lat
			a.LatCount[i]++
		}
	}
	if lat, ok := r.MemLatency(); ok {
		a.MemLatSum += lat
		a.MemLatCount++
	}
	if from, to, ok := r.InProgress(); ok {
		a.InProgressSum += to - from
		a.InProgressCount++
	}
	if r.AddrValid && len(a.Addrs) < db.RetainAddrs {
		a.Addrs = append(a.Addrs, r.Addr)
	}
	if partner != nil {
		a.PairSamples++
		if UsefulOverlap(r, partner) {
			a.UsefulOverlap++
		}
		if RetiredWithin(db.TNear)(r, partner) {
			a.RetiredNear++
		}
		if len(db.metricFns) > 0 {
			if a.PairMetrics == nil {
				a.PairMetrics = make([]uint64, len(db.metricFns))
			}
			for i, f := range db.metricFns {
				if f(r, partner) {
					a.PairMetrics[i]++
				}
			}
		}
	}
}

// RegisterPairMetric adds a custom pair metric — the §5.2.4 flexibility:
// any predicate over the two records of a pair becomes a statistically
// estimable per-instruction quantity. It returns the metric's index and
// must be called before samples are added.
func (db *DB) RegisterPairMetric(name string, f OverlapFunc) int {
	if db.samples > 0 {
		panic("profile: RegisterPairMetric after samples were added")
	}
	db.metricNames = append(db.metricNames, name)
	db.metricFns = append(db.metricFns, f)
	return len(db.metricFns) - 1
}

// PairMetricNames returns the registered metric names in index order.
func (db *DB) PairMetricNames() []string {
	return append([]string(nil), db.metricNames...)
}

// EstimatePairMetric estimates, for pc, the number of instructions in the
// ±Window neighborhood of each execution satisfying metric idx, summed
// over executions: count * W * S (the same scaling as useful overlap).
// ok is false without paired samples for pc.
func (db *DB) EstimatePairMetric(pc uint64, idx int) (est float64, ok bool) {
	a := db.byPC[pc]
	if a == nil || a.PairSamples == 0 || idx < 0 || idx >= len(db.metricFns) {
		return 0, false
	}
	var k uint64
	if idx < len(a.PairMetrics) {
		k = a.PairMetrics[idx]
	}
	return float64(k) * float64(db.W) * db.S * db.lossCorrection(), true
}

// Get returns the accumulator for pc, or nil. The pointer ALIASES live
// database state — later Adds mutate it in place. Callers that retain
// results across writes (or hand them to another goroutine) must copy,
// or go through SafeDB.Get, which does.
func (db *DB) Get(pc uint64) *PCAccum { return db.byPC[pc] }

// PCs returns all profiled PCs in ascending order.
func (db *DB) PCs() []uint64 {
	pcs := make([]uint64, 0, len(db.byPC))
	for pc := range db.byPC {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

// EstimatedCount estimates how many times pc was fetched (on the predicted
// path) over the run: samples * S, scaled up by the observed loss rate
// when RecordLoss has reported upstream sample loss.
func (db *DB) EstimatedCount(pc uint64) float64 {
	a := db.byPC[pc]
	if a == nil {
		return 0
	}
	return EstimateCount(a.Samples, db.S) * db.lossCorrection()
}

// EstimatedEventCount estimates the number of occurrences of ev at pc,
// loss-corrected like EstimatedCount.
func (db *DB) EstimatedEventCount(pc uint64, ev core.Event) float64 {
	a := db.byPC[pc]
	if a == nil {
		return 0
	}
	return EstimateCount(a.EventCount(ev), db.S) * db.lossCorrection()
}

// WastedSlots computes the §5.2.3 wasted-issue-slot estimate for pc:
//
//	total slots  ≈ L_I * C * S / 2
//	useful       ≈ U_I * W * S
//	wasted       = total - useful (clamped at 0)
//
// ok is false when the database has no paired samples for pc.
func (db *DB) WastedSlots(pc uint64) (wasted, total, useful float64, ok bool) {
	a := db.byPC[pc]
	if a == nil || a.PairSamples == 0 {
		return 0, 0, 0, false
	}
	// Both terms are linear in sample counts, so the loss correction
	// scales them identically; their ratio (and NeighborhoodIPC, a pure
	// ratio) needs no correction at all.
	corr := db.lossCorrection()
	total = float64(a.InProgressSum) * float64(db.C) * db.S / 2 * corr
	useful = float64(a.UsefulOverlap) * float64(db.W) * db.S * corr
	wasted = total - useful
	if wasted < 0 {
		wasted = 0
	}
	return wasted, total, useful, true
}

// NeighborhoodIPC estimates the instructions-per-cycle level in the
// dynamic neighborhood of pc (§5.2.4): of the W-instruction window around
// each execution, the fraction of partners retiring within TNear cycles,
// scaled to instructions per cycle: W * fraction / TNear. ok is false
// without paired samples.
func (db *DB) NeighborhoodIPC(pc uint64) (ipc float64, ok bool) {
	a := db.byPC[pc]
	if a == nil || a.PairSamples == 0 || db.TNear == 0 {
		return 0, false
	}
	frac := float64(a.RetiredNear) / float64(a.PairSamples)
	return float64(db.W) * frac / float64(db.TNear), true
}

// HotPCs returns the n PCs with the most samples, descending (ties
// break toward the lower PC). It walks and sorts the whole per-PC map:
// O(DB log DB), the exact path. The returned pointers ALIAS live
// database state, like Get; SafeDB.HotPCs serves the same question from
// its published sketch view in O(n) with deep-copied rows.
func (db *DB) HotPCs(n int) []*PCAccum {
	accs := make([]*PCAccum, 0, len(db.byPC))
	for _, a := range db.byPC {
		accs = append(accs, a)
	}
	sort.Slice(accs, func(i, j int) bool {
		if accs[i].Samples != accs[j].Samples {
			return accs[i].Samples > accs[j].Samples
		}
		return accs[i].PC < accs[j].PC
	})
	if n > 0 && len(accs) > n {
		accs = accs[:n]
	}
	return accs
}

// Report renders a hot-instruction table. prog may be nil; when given it
// supplies disassembly and symbol names.
func (db *DB) Report(prog *isa.Program, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d samples (%d paired), mean interval %.0f\n", db.samples, db.pairs, db.S)
	if l := db.Lost(); l > 0 {
		fmt.Fprintf(&b, "%d samples lost (%d corrupt-rejected), loss rate %.1f%%; estimates loss-corrected\n",
			l, db.corruptRejected, 100*db.LossRate())
	}
	fmt.Fprintf(&b, "%-10s %-24s %8s %14s %7s %7s %7s %9s\n",
		"PC", "instruction", "samples", "est.cnt(±95%)", "ret%", "dmiss%", "mispr%", "avg-lat")
	for _, a := range db.HotPCs(n) {
		name := fmt.Sprintf("%#x", a.PC)
		dis := ""
		if prog != nil {
			if in, ok := prog.At(a.PC); ok {
				dis = in.String()
			}
			name = prog.SymbolFor(a.PC)
		}
		var lat float64
		if a.InProgressCount > 0 {
			lat = float64(a.InProgressSum) / float64(a.InProgressCount)
		}
		lo, hi := ConfidenceInterval(a.Samples, db.S*db.lossCorrection(), 1.96)
		fmt.Fprintf(&b, "%-10s %-24s %8d %8.0f±%-5.0f %6.1f%% %6.1f%% %6.1f%% %9.1f\n",
			name, dis, a.Samples, db.EstimatedCount(a.PC), (hi-lo)/2,
			100*RateEstimate(a.Retired(), a.Samples),
			100*RateEstimate(a.EventCount(core.EvDCacheMiss), a.Samples),
			100*RateEstimate(a.EventCount(core.EvMispredict), a.Samples),
			lat)
	}
	return b.String()
}
