package profile

import (
	"fmt"
	"sort"
	"strings"

	"profileme/internal/core"
	"profileme/internal/isa"
)

// EdgeProfile estimates control-flow edge execution frequencies from
// paired samples (§5.2: "Paired samples can also be used to measure edge
// frequencies of a program's control-flow and call graphs"). A pair whose
// realized intra-pair fetch distance is exactly 1 is a direct observation
// of one dynamic edge — the two instructions were fetched back to back.
// Since the minor interval is uniform on [1, W], a fraction 1/W of pairs
// land on each distance, so an edge observed k times was executed about
// k*W*S times.
type EdgeProfile struct {
	// S and W as in DB: mean sampling interval and pairing window.
	S float64
	W int

	edges map[Edge]uint64
	pairs uint64 // pairs seen (any distance)
	hits  uint64 // pairs at distance 1
}

// Edge is one observed control-flow transition in fetch order.
type Edge struct{ From, To uint64 }

// NewEdgeProfile returns an empty edge profile for a sampling
// configuration.
func NewEdgeProfile(s float64, w int) *EdgeProfile {
	return &EdgeProfile{S: s, W: w, edges: make(map[Edge]uint64)}
}

// Add folds a sample into the profile. Only paired samples at fetch
// distance 1 whose first record carries an instruction contribute.
func (e *EdgeProfile) Add(s core.Sample) {
	if !s.Paired {
		return
	}
	e.pairs++
	if s.FetchDistance != 1 {
		return
	}
	if s.First.Events.Has(core.EvNoInstruction) || s.Second.Events.Has(core.EvNoInstruction) {
		return
	}
	e.hits++
	e.edges[Edge{From: s.First.PC, To: s.Second.PC}]++
}

// Handler adapts the profile to a Pipeline.AttachProfileMe handler.
func (e *EdgeProfile) Handler() func([]core.Sample) {
	return func(ss []core.Sample) {
		for _, s := range ss {
			e.Add(s)
		}
	}
}

// Observations returns the raw distance-1 observation count for an edge.
func (e *EdgeProfile) Observations(from, to uint64) uint64 {
	return e.edges[Edge{From: from, To: to}]
}

// Estimate returns the estimated execution count of the edge.
func (e *EdgeProfile) Estimate(from, to uint64) float64 {
	return float64(e.edges[Edge{From: from, To: to}]) * e.S * float64(e.W)
}

// Pairs returns the number of paired samples consumed and how many were
// at distance 1.
func (e *EdgeProfile) Pairs() (pairs, distanceOne uint64) { return e.pairs, e.hits }

// EdgeCount is one profiled edge with its estimate.
type EdgeCount struct {
	Edge     Edge
	Observed uint64
	Estimate float64
}

// Hot returns the n most-observed edges, descending.
func (e *EdgeProfile) Hot(n int) []EdgeCount {
	out := make([]EdgeCount, 0, len(e.edges))
	for edge, k := range e.edges {
		out = append(out, EdgeCount{Edge: edge, Observed: k, Estimate: float64(k) * e.S * float64(e.W)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Observed != out[j].Observed {
			return out[i].Observed > out[j].Observed
		}
		if out[i].Edge.From != out[j].Edge.From {
			return out[i].Edge.From < out[j].Edge.From
		}
		return out[i].Edge.To < out[j].Edge.To
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// BranchBias estimates the taken fraction of the conditional branch at
// pc from the two outgoing edges' observations. ok is false when the
// branch was never observed at distance 1.
func (e *EdgeProfile) BranchBias(pc, takenTarget uint64) (takenFrac float64, ok bool) {
	taken := e.edges[Edge{From: pc, To: takenTarget}]
	fall := e.edges[Edge{From: pc, To: pc + isa.InstBytes}]
	if taken+fall == 0 {
		return 0, false
	}
	return float64(taken) / float64(taken+fall), true
}

// CallEdge is one estimated call-graph edge (§5.2: paired samples measure
// "edge frequencies of a program's control-flow and call graphs").
type CallEdge struct {
	CallerProc string
	CalleeProc string
	Observed   uint64
	Estimate   float64
}

// CallGraph aggregates the distance-1 edges whose destination is a
// procedure entry into caller-procedure -> callee-procedure counts.
func (e *EdgeProfile) CallGraph(prog *isa.Program) []CallEdge {
	agg := make(map[[2]string]uint64)
	for edge, k := range e.edges {
		callee := prog.ProcAt(edge.To)
		if callee == nil || callee.Start != edge.To {
			continue // not a procedure entry
		}
		if in, ok := prog.At(edge.From); !ok || in.Op.Class() != isa.ClassCall {
			continue // fall-ins and jumps are not calls
		}
		caller := prog.ProcAt(edge.From)
		name := "(none)"
		if caller != nil {
			name = caller.Name
		}
		agg[[2]string{name, callee.Name}] += k
	}
	out := make([]CallEdge, 0, len(agg))
	for key, k := range agg {
		out = append(out, CallEdge{
			CallerProc: key[0], CalleeProc: key[1],
			Observed: k, Estimate: float64(k) * e.S * float64(e.W),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Observed != out[j].Observed {
			return out[i].Observed > out[j].Observed
		}
		if out[i].CallerProc != out[j].CallerProc {
			return out[i].CallerProc < out[j].CallerProc
		}
		return out[i].CalleeProc < out[j].CalleeProc
	})
	return out
}

// Report renders the hottest edges; prog may be nil.
func (e *EdgeProfile) Report(prog *isa.Program, n int) string {
	var b strings.Builder
	pairs, hits := e.Pairs()
	fmt.Fprintf(&b, "edge profile: %d pairs, %d at distance 1 (%.1f%%), %d distinct edges\n",
		pairs, hits, 100*float64(hits)/float64(maxU64(1, pairs)), len(e.edges))
	sym := func(pc uint64) string {
		if prog != nil {
			return prog.SymbolFor(pc)
		}
		return fmt.Sprintf("%#x", pc)
	}
	for _, ec := range e.Hot(n) {
		fmt.Fprintf(&b, "  %-16s -> %-16s %6d obs  ~%.0f executions\n",
			sym(ec.Edge.From), sym(ec.Edge.To), ec.Observed, ec.Estimate)
	}
	return b.String()
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
