package profile

import (
	"bytes"
	"errors"
	"testing"

	"profileme/internal/core"
)

// FuzzLoadDB feeds LoadDB arbitrary bytes. The contract under test: every
// rejection is one of the three typed errors (never a panic or an
// unbounded allocation), and an accepted database is immediately usable.
func FuzzLoadDB(f *testing.F) {
	// Seed with a valid image plus near-valid mutants so the fuzzer starts
	// deep inside the envelope grammar.
	db := NewDB(100, 80, 4)
	db.RetainAddrs = 2
	r := rec(0x40, true, 0, 2, 3, 5, 9, 12)
	r.Addr, r.AddrValid = 0xbeef, true
	db.Add(core.Sample{First: r})
	db.RecordLoss(3)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:headerBytes])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte(dbMagic))
	f.Add([]byte("not a profile database at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadDB(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) &&
				!errors.Is(err, ErrVersionSkew) {
				t.Fatalf("untyped load error: %v", err)
			}
			return
		}
		// Accepted: the database must answer queries without blowing up.
		for _, pc := range got.PCs() {
			got.EstimatedCount(pc)
		}
		_ = got.Report(nil, 20)
		_ = got.LossRate()
	})
}
