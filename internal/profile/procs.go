package profile

import (
	"fmt"
	"sort"
	"strings"

	"profileme/internal/core"
	"profileme/internal/isa"
)

// ProcAccum aggregates a procedure's samples (the paper's §3 "aggregate
// information ... over a procedure, or a smaller unit such as a loop" —
// per-instruction data rolls up for free).
type ProcAccum struct {
	Name    string
	Samples uint64
	Retired uint64
	DMiss   uint64
	IMiss   uint64
	Mispred uint64
	// InProgressSum/Count give the mean in-progress latency of the
	// procedure's sampled instructions.
	InProgressSum   int64
	InProgressCount uint64
	// EstRetired scales the retired-sample count by the sampling interval.
	EstRetired float64
}

// MeanLatency returns the procedure's mean fetch->retire-ready latency.
func (p *ProcAccum) MeanLatency() float64 {
	if p.InProgressCount == 0 {
		return 0
	}
	return float64(p.InProgressSum) / float64(p.InProgressCount)
}

// ByProc rolls the per-PC database up to procedure granularity using the
// program's procedure table; PCs outside any procedure aggregate under
// "(none)". Results are ordered by sample count, descending.
func ByProc(db *DB, prog *isa.Program) []ProcAccum {
	accs := make(map[string]*ProcAccum)
	get := func(name string) *ProcAccum {
		a, ok := accs[name]
		if !ok {
			a = &ProcAccum{Name: name}
			accs[name] = a
		}
		return a
	}
	for _, pc := range db.PCs() {
		src := db.Get(pc)
		name := "(none)"
		if pr := prog.ProcAt(pc); pr != nil {
			name = pr.Name
		}
		a := get(name)
		a.Samples += src.Samples
		a.Retired += src.Retired()
		a.DMiss += src.EventCount(core.EvDCacheMiss)
		a.IMiss += src.EventCount(core.EvICacheMiss)
		a.Mispred += src.EventCount(core.EvMispredict)
		a.InProgressSum += src.InProgressSum
		a.InProgressCount += src.InProgressCount
	}
	out := make([]ProcAccum, 0, len(accs))
	for _, a := range accs {
		a.EstRetired = EstimateCount(a.Retired, db.S)
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ProcReport renders the per-procedure rollup.
func ProcReport(db *DB, prog *isa.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %9s %7s %7s %7s %9s\n",
		"procedure", "samples", "est.ret", "ret%", "dmiss%", "mispr%", "avg-lat")
	for _, a := range ByProc(db, prog) {
		fmt.Fprintf(&b, "%-14s %8d %9.0f %6.1f%% %6.1f%% %6.1f%% %9.1f\n",
			a.Name, a.Samples, a.EstRetired,
			100*RateEstimate(a.Retired, a.Samples),
			100*RateEstimate(a.DMiss, a.Samples),
			100*RateEstimate(a.Mispred, a.Samples),
			a.MeanLatency())
	}
	return b.String()
}
