package profile

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"profileme/internal/core"
)

// saveImage returns a freshly saved database image with addrs, a pair
// metric, and recorded loss — every serialized feature exercised.
func saveImage(t *testing.T) ([]byte, *DB) {
	t.Helper()
	db := NewDB(100, 80, 4)
	db.RetainAddrs = 4
	db.RegisterPairMetric("near", RetiredWithin(10))
	r := rec(0x40, true, 0, 2, 3, 5, 9, 12)
	r.Addr, r.AddrValid = 0xbeef, true
	db.Add(core.Sample{First: r})
	db.Add(pairSample(0x40, 0x44, 1))
	db.RecordLoss(7)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), db
}

func TestLoadTruncatedTyped(t *testing.T) {
	img, _ := saveImage(t)
	// Cut at every structurally interesting point: inside the header,
	// inside the payload, inside the trailing checksum.
	for _, cut := range []int{0, 3, headerBytes - 1, headerBytes,
		headerBytes + 5, len(img) / 2, len(img) - 4, len(img) - 1} {
		_, err := LoadDB(bytes.NewReader(img[:cut]))
		if err == nil {
			t.Fatalf("cut at %d accepted", cut)
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: not typed ErrTruncated: %v", cut, err)
		}
	}
}

func TestLoadBitFlipTyped(t *testing.T) {
	img, _ := saveImage(t)
	// Flip one bit in the payload: the checksum must catch it.
	for _, at := range []int{headerBytes, headerBytes + 7, len(img) - 8} {
		bad := append([]byte(nil), img...)
		bad[at] ^= 0x10
		_, err := LoadDB(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flip at %d accepted", at)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: not typed ErrCorrupt: %v", at, err)
		}
	}
	// Damaged magic is corruption too.
	bad := append([]byte(nil), img...)
	bad[0] = 'X'
	if _, err := LoadDB(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestLoadVersionSkewTyped(t *testing.T) {
	img, _ := saveImage(t)
	// A future format version.
	bad := append([]byte(nil), img...)
	bad[4] = 9
	_, err := LoadDB(bytes.NewReader(bad))
	if !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("future version: %v", err)
	}

	// A pre-envelope database: naked gob, as the original Save wrote.
	legacy := dbImage{S: 100, W: 80, C: 4, Samples: 3}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
		t.Fatal(err)
	}
	_, err = LoadDB(&buf)
	if !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("legacy gob not reported as version skew: %v", err)
	}
}

func TestLoadAbsurdLengthRejected(t *testing.T) {
	img, _ := saveImage(t)
	bad := append([]byte(nil), img...)
	for i := 8; i < 16; i++ {
		bad[i] = 0xff // declared payload ~2^64
	}
	_, err := LoadDB(bytes.NewReader(bad))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd length: %v", err)
	}
}

func TestSaveLoadCarriesLossAccounting(t *testing.T) {
	img, db := saveImage(t)
	got, err := LoadDB(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if got.Lost() != db.Lost() || got.LossRate() != db.LossRate() {
		t.Fatalf("loss accounting lost: %d/%v vs %d/%v",
			got.Lost(), got.LossRate(), db.Lost(), db.LossRate())
	}
	if got.EstimatedCount(0x40) != db.EstimatedCount(0x40) {
		t.Fatal("loss-corrected estimate changed across save/load")
	}
}

// TestMergeDoesNotAliasSource is the regression test for the Addrs slice
// sharing hazard: after a merge, mutating the source database's retained
// addresses must not change the destination's (and vice versa).
func TestMergeDoesNotAliasSource(t *testing.T) {
	mk := func(addr uint64) *DB {
		db := NewDB(100, 80, 4)
		db.RetainAddrs = 8
		r := rec(0x40, true, 0, 2, 3, 5, 9, 12)
		r.Addr, r.AddrValid = addr, true
		db.Add(core.Sample{First: r})
		return db
	}
	dst, src := mk(0x100), mk(0x200)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0x100, 0x200}
	got := dst.Get(0x40).Addrs
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("merged addrs = %v, want %v", got, want)
	}

	src.Get(0x40).Addrs[0] = 0xdead // mutate source after merge
	if got := dst.Get(0x40).Addrs; got[1] != 0x200 {
		t.Fatalf("destination aliases source: %v", got)
	}
	dst.Get(0x40).Addrs[1] = 0xbeef // and the other direction
	if got := src.Get(0x40).Addrs; got[0] != 0xdead {
		t.Fatalf("source aliases destination: %v", got)
	}
}

func TestLossCorrectedEstimators(t *testing.T) {
	db := NewDB(10, 20, 4)
	for i := 0; i < 30; i++ {
		db.Add(pairSample(0x10, 0x20, 1))
	}
	base := db.EstimatedCount(0x10)
	_, baseTotal, baseUseful, _ := db.WastedSlots(0x10)
	baseIPC, _ := db.NeighborhoodIPC(0x10)

	// 30 delivered + 10 lost => a 25% loss rate, 4/3 correction.
	db.RecordLoss(10)
	if got := db.LossRate(); got != 0.25 {
		t.Fatalf("LossRate = %v, want 0.25", got)
	}
	if got := db.EstimatedCount(0x10); got != base*4/3 {
		t.Fatalf("EstimatedCount = %v, want %v", got, base*4/3)
	}
	if got := db.EstimatedEventCount(0x10, core.EvRetired); got != base*4/3 {
		t.Fatalf("EstimatedEventCount = %v, want %v", got, base*4/3)
	}
	_, total, useful, _ := db.WastedSlots(0x10)
	if total != baseTotal*4/3 || useful != baseUseful*4/3 {
		t.Fatalf("WastedSlots not corrected: %v/%v vs %v/%v", total, useful, baseTotal, baseUseful)
	}
	// Pure ratios are loss-invariant.
	if ipc, _ := db.NeighborhoodIPC(0x10); ipc != baseIPC {
		t.Fatalf("NeighborhoodIPC changed under loss: %v vs %v", ipc, baseIPC)
	}
}

func TestAddRejectsCorruptRecords(t *testing.T) {
	db := NewDB(10, 20, 4)
	good := rec(0x10, true, 0, 1, 2, 3, 4, 5)

	undefinedEvent := good
	undefinedEvent.Events |= core.Event(1) << 30

	badTrap := good
	badTrap.Trap = core.TrapReason(200)

	timeWarp := good
	timeWarp.StageCycle[core.StageRetire] = 1 // retires before issue

	hugeCycle := good
	hugeCycle.StageCycle[core.StageIssue] = 1 << 55

	badHistory := good
	badHistory.HistoryBits = 200

	loadBeforeIssue := good
	loadBeforeIssue.LoadComplete = 1 // issue at 3

	for i, r := range []core.Record{undefinedEvent, badTrap, timeWarp, hugeCycle, badHistory, loadBeforeIssue} {
		db.Add(core.Sample{First: r})
		if db.Samples() != 0 {
			t.Fatalf("corrupt record %d accepted", i)
		}
	}
	if db.CorruptRejected() != 6 {
		t.Fatalf("CorruptRejected = %d, want 6", db.CorruptRejected())
	}
	// Rejected samples count as losses for the correction.
	if db.Lost() != 6 {
		t.Fatalf("Lost = %d, want 6", db.Lost())
	}

	// A corrupt partner poisons the whole pair.
	s := pairSample(0x10, 0x20, 1)
	s.Second.Trap = core.TrapReason(99)
	db.Add(s)
	if db.Samples() != 0 || db.CorruptRejected() != 7 {
		t.Fatalf("corrupt pair accepted: samples=%d rejected=%d", db.Samples(), db.CorruptRejected())
	}

	db.Add(core.Sample{First: good})
	if db.Samples() != 1 {
		t.Fatal("sane record rejected")
	}
}
