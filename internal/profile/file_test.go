package profile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"profileme/internal/core"
)

// fileDB builds a small database with a distinguishing sample count.
func fileDB(t *testing.T, n int) *DB {
	t.Helper()
	db := NewDB(100, 0, 4)
	for i := 0; i < n; i++ {
		db.Add(core.Sample{First: rec(0x40+uint64(8*i), true, 0, 2, 3, 5, 9, 12)})
	}
	return db
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	db := fileDB(t, 5)
	db.RecordLoss(3)
	if err := SaveFile(db, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples() != 5 || got.Lost() != 3 {
		t.Fatalf("round trip lost data: samples %d, lost %d", got.Samples(), got.Lost())
	}
}

// TestWriteAtomicFailedWriteLeavesPrevious is the satellite contract: a
// write that fails midway must leave the previous file byte-for-byte
// intact and must not leave a temporary behind.
func TestWriteAtomicFailedWriteLeavesPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.db")
	if err := SaveFile(fileDB(t, 5), path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk on fire")
	err = WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage that must never reach p.db")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("failure not propagated: %v", err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed write modified the previous file")
	}
	if db, err := LoadFile(path); err != nil || db.Samples() != 5 {
		t.Fatalf("previous database unreadable after failed write: %v", err)
	}
	assertNoTemps(t, dir)
}

// TestSaveFileOverwriteIsAtomic overwrites an existing database and
// checks the new image fully replaces the old with no temp droppings.
func TestSaveFileOverwriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.db")
	if err := SaveFile(fileDB(t, 2), path); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(fileDB(t, 9), path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples() != 9 {
		t.Fatalf("overwrite not applied: %d samples", got.Samples())
	}
	assertNoTemps(t, dir)
}

func TestSaveFileMissingDirectoryFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "p.db")
	if err := SaveFile(fileDB(t, 1), path); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
}

func TestLoadFileCorruptTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	if err := SaveFile(fileDB(t, 3), path); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0x40
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped file not typed ErrCorrupt: %v", err)
	}
}

func assertNoTemps(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temporary left behind: %s", e.Name())
		}
	}
}
