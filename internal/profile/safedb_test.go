package profile

import (
	"bytes"
	"sync"
	"testing"

	"profileme/internal/core"
)

// safeShard builds a small single-owner shard database with samples
// spread over a deterministic set of PCs.
func safeShard(seed uint64) *DB {
	db := NewDB(16, 0, 4)
	for i := uint64(0); i < 50; i++ {
		pc := 0x400 + 8*((seed+i*7)%13)
		r := rec(pc, true, 0, 1, 2, 3, 5, 9)
		if i%3 == 0 {
			r.Events |= core.EvDCacheMiss
		}
		db.Add(core.Sample{First: r})
	}
	db.RecordLoss(seed % 5)
	return db
}

// TestSafeDBConcurrentMergeAndQuery is the wrapper's contract test: many
// goroutines merging shards and recording losses while many others run
// estimator queries, hot-PC scans, and envelope saves. It must pass under
// -race (CI runs the test suite with the race detector on), and the final
// totals must be exact — concurrency may reorder merges but never lose
// or double-count samples.
func TestSafeDBConcurrentMergeAndQuery(t *testing.T) {
	agg := NewSafeDB(NewDB(16, 0, 4))

	const (
		writers = 8
		merges  = 20
		readers = 8
	)

	var wantSamples, wantLost uint64
	shards := make([][]*DB, writers)
	for w := range shards {
		shards[w] = make([]*DB, merges)
		for m := range shards[w] {
			db := safeShard(uint64(w*merges + m))
			wantSamples += db.Samples()
			wantLost += db.Lost()
			shards[w][m] = db
		}
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, a := range agg.HotPCs(5) {
					agg.EstimatedCount(a.PC)
					agg.EstimatedEventCount(a.PC, core.EvDCacheMiss)
				}
				agg.LossRate()
				if r == 0 {
					var buf bytes.Buffer
					if err := agg.Save(&buf); err != nil {
						t.Errorf("concurrent save: %v", err)
						return
					}
				}
			}
		}(r)
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for _, db := range shards[w] {
				extra := db.Lost() // split: merge carries the shard's own loss
				if err := agg.Merge(db); err != nil {
					t.Errorf("merge: %v", err)
					return
				}
				agg.RecordLoss(extra)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if got := agg.Samples(); got != wantSamples {
		t.Fatalf("samples %d after concurrent merges, want %d", got, wantSamples)
	}
	// Each shard's loss was counted twice on purpose: once via Merge, once
	// via RecordLoss, to exercise both write paths.
	if got := agg.Lost(); got != 2*wantLost {
		t.Fatalf("lost %d after concurrent merges, want %d", got, 2*wantLost)
	}
}

// TestSafeDBCopiesDoNotAlias verifies reader results are deep copies: a
// merge after the read must not mutate the slices a caller holds.
func TestSafeDBCopiesDoNotAlias(t *testing.T) {
	base := NewDB(16, 0, 4)
	base.RetainAddrs = 4
	r := rec(0x400, true, 0, 1, 2, 3, 5, 9)
	r.Addr, r.AddrValid = 0x1000, true
	base.Add(core.Sample{First: r})
	agg := NewSafeDB(base)

	got, ok := agg.Get(0x400)
	if !ok || len(got.Addrs) != 1 {
		t.Fatalf("accumulator not returned: ok=%v addrs=%v", ok, got.Addrs)
	}

	shard := NewDB(16, 0, 4)
	shard.RetainAddrs = 4
	r2 := rec(0x400, true, 0, 1, 2, 3, 5, 9)
	r2.Addr, r2.AddrValid = 0x2000, true
	shard.Add(core.Sample{First: r2})
	if err := agg.Merge(shard); err != nil {
		t.Fatal(err)
	}

	if len(got.Addrs) != 1 || got.Addrs[0] != 0x1000 {
		t.Fatalf("held copy mutated by a later merge: %v", got.Addrs)
	}
}
