package profile

import (
	"math"
	"sort"
)

// This file holds the two streaming summaries the query path serves from:
// a space-saving heavy-hitters sketch (top-K hot PCs in O(K) memory) and
// a DDSketch-style log-bucketed quantile sketch (latency percentiles with
// a bounded relative error). Both are deterministic, mergeable, and
// maintained incrementally at merge time, so a query never has to walk
// the O(DB) per-PC map. The property tests in sketch_test.go pin the
// error bounds stated here against exact answers.

// SSEntry is one space-saving counter: a tracked PC, its estimated
// count, and the worst-case overcount the estimate carries. The sketch's
// core guarantee (Metwally et al., "Efficient Computation of Frequent
// and Top-k Elements in Data Streams"):
//
//	Count - Err <= true count <= Count
//
// and Err is at most the sketch floor (MinCount), itself at most N/K for
// N total observations over K counters. SSEntry is a value type; rows
// returned by Items/TopK alias nothing inside the sketch.
type SSEntry struct {
	PC    uint64
	Count uint64 // estimate; never an undercount
	Err   uint64 // maximum overcount folded into Count
}

// SpaceSaving is the bounded-memory heavy-hitters sketch. It is NOT safe
// for concurrent use; SafeDB owns one under its write lock and publishes
// immutable row snapshots for readers.
//
// Weighted updates are supported (Add with w > 1), which is what merge-
// time maintenance needs: a shard merge contributes each PC's whole
// sample delta in one update.
type SpaceSaving struct {
	k     int
	n     uint64         // total weight observed
	heap  []SSEntry      // min-heap by Count (ties broken arbitrarily)
	index map[uint64]int // PC -> heap position
}

// NewSpaceSaving returns an empty sketch with k counters. Any item whose
// true count exceeds N/k is guaranteed to be tracked; estimates overcount
// by at most MinCount() <= N/k.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{k: k, index: make(map[uint64]int, k)}
}

// K returns the sketch capacity.
func (s *SpaceSaving) K() int { return s.k }

// N returns the total weight the sketch has observed.
func (s *SpaceSaving) N() uint64 { return s.n }

// Len returns the number of tracked PCs (at most K).
func (s *SpaceSaving) Len() int { return len(s.heap) }

// MinCount returns the sketch floor: the smallest tracked count once the
// sketch is full, 0 before that. It bounds two things at once — the
// maximum overcount of any reported estimate, and the maximum true count
// of any PC the sketch is NOT tracking.
func (s *SpaceSaving) MinCount() uint64 {
	if len(s.heap) < s.k {
		return 0
	}
	return s.heap[0].Count
}

// Add folds weight w for pc into the sketch: O(log K). If the sketch is
// full and pc is untracked, the minimum counter is evicted and its count
// becomes pc's inherited overcount (the space-saving step).
func (s *SpaceSaving) Add(pc uint64, w uint64) {
	if w == 0 {
		return
	}
	s.n += w
	if i, ok := s.index[pc]; ok {
		s.heap[i].Count += w
		s.siftDown(i)
		return
	}
	if len(s.heap) < s.k {
		s.heap = append(s.heap, SSEntry{PC: pc, Count: w})
		s.siftUp(len(s.heap) - 1)
		return
	}
	evicted := s.heap[0]
	delete(s.index, evicted.PC)
	s.heap[0] = SSEntry{PC: pc, Count: evicted.Count + w, Err: evicted.Count}
	s.index[pc] = 0
	s.siftDown(0)
}

// Get returns the entry for pc and whether it is tracked. The returned
// entry is a copy.
func (s *SpaceSaving) Get(pc uint64) (SSEntry, bool) {
	i, ok := s.index[pc]
	if !ok {
		return SSEntry{}, false
	}
	return s.heap[i], true
}

// Items returns every tracked entry, descending by Count with PC as the
// tie-break (matching DB.HotPCs ordering, so the sketch and the exact
// path agree whenever the sketch has seen fewer than K distinct PCs and
// is therefore exact). The slice and entries are copies.
func (s *SpaceSaving) Items() []SSEntry {
	out := make([]SSEntry, len(s.heap))
	copy(out, s.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Merge returns a new sketch summarizing the union stream of a and b —
// the property that lets per-instance partials combine into a fleet
// answer. For a PC tracked in only one input, the other input may have
// seen it up to its floor times; that floor is added to both the count
// and the error so the merged estimate keeps the never-undercount
// guarantee. The merged floor (and so the error bound) is at most
// floor(a) + floor(b).
func Merge(a, b *SpaceSaving) *SpaceSaving {
	k := a.k
	if b.k < k {
		k = b.k
	}
	type pair struct{ count, err uint64 }
	union := make(map[uint64]pair, len(a.heap)+len(b.heap))
	fa, fb := a.MinCount(), b.MinCount()
	for _, e := range a.heap {
		union[e.PC] = pair{e.Count, e.Err}
	}
	for _, e := range b.heap {
		p, ok := union[e.PC]
		if ok {
			union[e.PC] = pair{p.count + e.Count, p.err + e.Err}
		} else {
			// Unseen by a: a may still have counted it up to fa times.
			union[e.PC] = pair{e.Count + fa, e.Err + fa}
		}
	}
	for _, e := range a.heap {
		if _, tracked := b.index[e.PC]; !tracked {
			p := union[e.PC]
			union[e.PC] = pair{p.count + fb, p.err + fb}
		}
	}
	entries := make([]SSEntry, 0, len(union))
	for pc, p := range union {
		entries = append(entries, SSEntry{PC: pc, Count: p.count, Err: p.err})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].PC < entries[j].PC
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	m := NewSpaceSaving(k)
	m.n = a.n + b.n
	for _, e := range entries {
		m.heap = append(m.heap, e)
		m.index[e.PC] = len(m.heap) - 1
	}
	// Restore the min-heap invariant over the kept entries.
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	for i := range m.heap {
		m.index[m.heap[i].PC] = i
	}
	return m
}

func (s *SpaceSaving) less(i, j int) bool { return s.heap[i].Count < s.heap[j].Count }

func (s *SpaceSaving) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.index[s.heap[i].PC] = i
	s.index[s.heap[j].PC] = j
}

func (s *SpaceSaving) siftUp(i int) {
	s.index[s.heap[i].PC] = i
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *SpaceSaving) siftDown(i int) {
	s.index[s.heap[i].PC] = i
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s.heap) && s.less(l, min) {
			min = l
		}
		if r < len(s.heap) && s.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		s.swap(i, min)
		i = min
	}
}

// DefaultQuantileAlpha is the default relative-error target for quantile
// sketches: a reported quantile is within ±5% of the exact value.
const DefaultQuantileAlpha = 0.05

// QuantileSketch is a DDSketch-style log-bucketed histogram over
// non-negative values (cycle latencies here): bucket i covers
// (gamma^(i-1), gamma^i] with gamma = (1+alpha)/(1-alpha), so the bucket
// midpoint estimate of any quantile is within alpha relative error of
// the exact answer. Values in [0, 1] land in a dedicated zero bucket and
// are reported as 0 (sub-cycle latencies do not exist in this domain).
//
// The sketch is deterministic and mergeable (bucket counts add); it is
// NOT safe for concurrent use — SafeDB owns its sketches under the write
// lock and publishes computed summaries into the read view.
type QuantileSketch struct {
	alpha  float64
	gamma  float64
	lgamma float64
	zero   uint64
	count  uint64
	bkt    map[int]uint64
}

// NewQuantileSketch returns an empty sketch with the given relative-
// error target (DefaultQuantileAlpha when alpha <= 0 or >= 1).
func NewQuantileSketch(alpha float64) *QuantileSketch {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultQuantileAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{alpha: alpha, gamma: gamma, lgamma: math.Log(gamma), bkt: make(map[int]uint64)}
}

// Alpha returns the sketch's relative-error bound.
func (q *QuantileSketch) Alpha() float64 { return q.alpha }

// Count returns the number of observations folded in.
func (q *QuantileSketch) Count() uint64 { return q.count }

// Add folds one observation into the sketch. Negative values are
// clamped to the zero bucket (they violate the latency domain but must
// not corrupt the histogram).
func (q *QuantileSketch) Add(v float64) { q.AddN(v, 1) }

// AddN folds n identical observations in one O(1) update — the merge-
// time path, where a shard contributes a per-PC mean weighted by its
// contributing-sample count.
func (q *QuantileSketch) AddN(v float64, n uint64) {
	if n == 0 {
		return
	}
	q.count += n
	if v <= 1 {
		q.zero += n
		return
	}
	i := int(math.Ceil(math.Log(v) / q.lgamma))
	q.bkt[i] += n
}

// Quantile returns the estimated q-quantile (q in [0,1]), within Alpha
// relative error of the exact quantile of the observed stream. With no
// observations it returns 0.
func (q *QuantileSketch) Quantile(p float64) float64 {
	if q.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(q.count-1))
	if rank < q.zero {
		return 0
	}
	idxs := make([]int, 0, len(q.bkt))
	for i := range q.bkt {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	cum := q.zero
	for _, i := range idxs {
		cum += q.bkt[i]
		if rank < cum {
			// Midpoint of (gamma^(i-1), gamma^i]: 2*gamma^i/(gamma+1).
			return 2 * math.Pow(q.gamma, float64(i)) / (q.gamma + 1)
		}
	}
	// Unreachable when counts are consistent; fall back to the top bucket.
	return 2 * math.Pow(q.gamma, float64(idxs[len(idxs)-1])) / (q.gamma + 1)
}

// MergeFrom folds another sketch's buckets into q. Both must share the
// same alpha (same bucket boundaries); mismatches are a programming
// error and panic.
func (q *QuantileSketch) MergeFrom(o *QuantileSketch) {
	if q.alpha != o.alpha {
		panic("profile: merging quantile sketches with different alphas")
	}
	q.zero += o.zero
	q.count += o.count
	for i, n := range o.bkt {
		q.bkt[i] += n
	}
}

// QuantileSummary is the published form of one latency distribution:
// fixed percentiles computed at view-publish time so readers never touch
// the live sketch. RelError is the sketch's alpha: each percentile is
// within ±RelError (relative) of the exact value over the observed
// stream.
type QuantileSummary struct {
	Kind     string  `json:"kind"`
	Count    uint64  `json:"count"`
	P50      float64 `json:"p50"`
	P90      float64 `json:"p90"`
	P99      float64 `json:"p99"`
	RelError float64 `json:"rel_error"`
}

// summarize computes the published percentiles for one sketch.
func (q *QuantileSketch) summarize(kind string) QuantileSummary {
	return QuantileSummary{
		Kind:     kind,
		Count:    q.count,
		P50:      q.Quantile(0.50),
		P90:      q.Quantile(0.90),
		P99:      q.Quantile(0.99),
		RelError: q.alpha,
	}
}
