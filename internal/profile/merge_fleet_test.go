package profile

import (
	"bytes"
	"errors"
	"testing"

	"profileme/internal/core"
)

// shardDB builds a shard-like database: per-PC samples with events and
// latencies plus a loss rollup, varied by seed so shards differ.
func shardDB(t *testing.T, seed uint64) *DB {
	t.Helper()
	db := NewDB(100, 0, 4)
	n := 3 + int(seed%5)
	for i := 0; i < n; i++ {
		pc := 0x40 + 8*uint64((seed+uint64(i))%7)
		r := rec(pc, true, 0, 2, 3, 5, 9, 12)
		if (seed+uint64(i))%2 == 0 {
			r.Events |= core.EvDCacheMiss
		}
		db.Add(core.Sample{First: r})
	}
	db.RecordLoss(seed % 4)
	return db
}

// cloneDB deep-copies a database through the persistence envelope, so
// merge tests can reuse source shards without aliasing.
func cloneDB(t *testing.T, db *DB) *DB {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// equalCounts compares everything a fleet aggregate depends on: totals,
// loss rollups, and per-PC accumulators.
func equalCounts(t *testing.T, a, b *DB) {
	t.Helper()
	if a.Samples() != b.Samples() || a.Lost() != b.Lost() || a.CorruptRejected() != b.CorruptRejected() {
		t.Fatalf("totals differ: (%d,%d,%d) vs (%d,%d,%d)",
			a.Samples(), a.Lost(), a.CorruptRejected(),
			b.Samples(), b.Lost(), b.CorruptRejected())
	}
	apcs, bpcs := a.PCs(), b.PCs()
	if len(apcs) != len(bpcs) {
		t.Fatalf("PC sets differ: %d vs %d", len(apcs), len(bpcs))
	}
	for i, pc := range apcs {
		if bpcs[i] != pc {
			t.Fatalf("PC %d differs: %#x vs %#x", i, pc, bpcs[i])
		}
		aa, ba := a.Get(pc), b.Get(pc)
		if aa.Samples != ba.Samples || aa.Events != ba.Events ||
			aa.LatSum != ba.LatSum || aa.LatCount != ba.LatCount {
			t.Fatalf("accumulator at %#x differs:\n%+v\n%+v", pc, *aa, *ba)
		}
	}
}

// TestMergeAssociativeCommutative checks that folding many shard
// databases into an aggregate gives the same counts and loss rollups in
// any association and order — the property the fleet supervisor relies
// on when workers finish nondeterministically.
func TestMergeAssociativeCommutative(t *testing.T) {
	shards := []*DB{shardDB(t, 1), shardDB(t, 2), shardDB(t, 3), shardDB(t, 9)}

	// ((a+b)+c)+d
	left := cloneDB(t, shards[0])
	for _, s := range shards[1:] {
		if err := left.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	// a+((b+c)+d), built right-to-left
	right := cloneDB(t, shards[3])
	if err := right.Merge(shards[2]); err != nil {
		t.Fatal(err)
	}
	if err := right.Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	if err := right.Merge(shards[0]); err != nil {
		t.Fatal(err)
	}
	// pairwise: (a+c) + (d+b)
	p1 := cloneDB(t, shards[0])
	if err := p1.Merge(shards[2]); err != nil {
		t.Fatal(err)
	}
	p2 := cloneDB(t, shards[3])
	if err := p2.Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	if err := p1.Merge(p2); err != nil {
		t.Fatal(err)
	}

	equalCounts(t, left, right)
	equalCounts(t, left, p1)
}

// TestMergeSelfErrors: handing the aggregate to itself must fail cleanly
// instead of double-counting or corrupting the PC map mid-iteration.
func TestMergeSelfErrors(t *testing.T) {
	db := shardDB(t, 5)
	before := db.Samples()
	if err := db.Merge(db); err == nil {
		t.Fatal("self-merge accepted")
	}
	if db.Samples() != before {
		t.Fatalf("self-merge mutated the database: %d -> %d samples", before, db.Samples())
	}
}

// TestMergeConfigMismatchErrors: shards from a differently configured
// campaign must be rejected, leaving the aggregate untouched.
func TestMergeConfigMismatchErrors(t *testing.T) {
	db := shardDB(t, 1)
	other := NewDB(200, 0, 4) // different interval
	if err := db.Merge(other); err == nil {
		t.Fatal("config-mismatched merge accepted")
	}
}

// TestMergeCorruptShardRejectedBeforeMerge: the fleet path is
// load-then-merge; a corrupt shard image fails the CRC at load with a
// typed error, so there is never a half-merged aggregate.
func TestMergeCorruptShardRejectedBeforeMerge(t *testing.T) {
	var buf bytes.Buffer
	if err := shardDB(t, 2).Save(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	img[len(img)/2] ^= 0x08
	if _, err := LoadDB(bytes.NewReader(img)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt shard not typed ErrCorrupt: %v", err)
	}
}
