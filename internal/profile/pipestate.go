package profile

import (
	"fmt"
	"strings"

	"profileme/internal/core"
)

// PipelinePhase is a coarse residency interval between captured stage
// timestamps, for the pipeline-state reconstruction.
type PipelinePhase int

// Phases, in pipeline order. An instruction is "in" a phase between the
// two stage timestamps bounding it.
const (
	PhaseFrontEnd   PipelinePhase = iota // fetch -> map
	PhaseQueue                           // map -> issue (rename + operand wait)
	PhaseExecute                         // issue -> retire-ready
	PhaseWaitRetire                      // retire-ready -> retire
	NumPhases       = iota
)

var phaseNames = [...]string{"front-end", "queue", "execute", "wait-retire"}

// String returns the phase name.
func (p PipelinePhase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// phaseBounds maps a phase to its bounding stages.
var phaseBounds = [NumPhases][2]core.Stage{
	{core.StageFetch, core.StageMap},
	{core.StageMap, core.StageIssue},
	{core.StageIssue, core.StageRetireReady},
	{core.StageRetireReady, core.StageRetire},
}

// PipelineProfile statistically reconstructs the processor state around a
// target instruction from paired samples — the §5.2 possibility the paper
// floats ("it may be possible to statistically reconstruct detailed
// processor pipeline states from paired samples"). For each cycle offset
// δ from the target's fetch, it estimates how many potentially-concurrent
// instructions sat in each pipeline phase at that moment: each pair
// contributes one uniformly-drawn instruction from the ±W window, so
// counts scale by W / pairs.
type PipelineProfile struct {
	// TargetPC selects which instruction's neighborhood is profiled.
	TargetPC uint64
	// W is the pairing window (the scale factor).
	W int
	// MinDelta/MaxDelta bound the reconstructed cycle offsets (relative
	// to the target's fetch).
	MinDelta, MaxDelta int64

	counts [][NumPhases]uint64 // per delta bucket
	pairs  uint64              // pair-views of the target
}

// NewPipelineProfile returns an empty reconstruction for the given window.
func NewPipelineProfile(targetPC uint64, w int, minDelta, maxDelta int64) *PipelineProfile {
	if maxDelta < minDelta {
		minDelta, maxDelta = maxDelta, minDelta
	}
	return &PipelineProfile{
		TargetPC: targetPC, W: w, MinDelta: minDelta, MaxDelta: maxDelta,
		counts: make([][NumPhases]uint64, maxDelta-minDelta+1),
	}
}

// Add folds one sample: if either record is the target, the partner's
// phase residency is accumulated relative to the target's fetch cycle.
func (pp *PipelineProfile) Add(s core.Sample) {
	if !s.Paired {
		return
	}
	if s.First.PC == pp.TargetPC {
		pp.addView(&s.First, &s.Second)
	}
	if s.Second.PC == pp.TargetPC {
		pp.addView(&s.Second, &s.First)
	}
}

// Handler adapts the profile to a Pipeline.AttachProfileMe handler.
func (pp *PipelineProfile) Handler() func([]core.Sample) {
	return func(ss []core.Sample) {
		for _, s := range ss {
			pp.Add(s)
		}
	}
}

func (pp *PipelineProfile) addView(target, partner *core.Record) {
	base := target.StageCycle[core.StageFetch]
	if base < 0 {
		return
	}
	pp.pairs++
	for ph := 0; ph < NumPhases; ph++ {
		from := partner.StageCycle[phaseBounds[ph][0]]
		to := partner.StageCycle[phaseBounds[ph][1]]
		if from < 0 || to < 0 {
			continue
		}
		lo, hi := from-base, to-base // partner in phase during [lo, hi)
		if lo < pp.MinDelta {
			lo = pp.MinDelta
		}
		if hi > pp.MaxDelta+1 {
			hi = pp.MaxDelta + 1
		}
		for d := lo; d < hi; d++ {
			pp.counts[d-pp.MinDelta][ph]++
		}
	}
}

// Pairs returns how many pair-views of the target were accumulated.
func (pp *PipelineProfile) Pairs() uint64 { return pp.pairs }

// Occupancy estimates the expected number of potentially-concurrent
// instructions in the given phase at cycle offset delta from the target's
// fetch. ok is false when delta is out of range or no pairs were seen.
func (pp *PipelineProfile) Occupancy(delta int64, ph PipelinePhase) (float64, bool) {
	if pp.pairs == 0 || delta < pp.MinDelta || delta > pp.MaxDelta || ph < 0 || int(ph) >= NumPhases {
		return 0, false
	}
	k := pp.counts[delta-pp.MinDelta][ph]
	return float64(k) * float64(pp.W) / float64(pp.pairs), true
}

// TotalOccupancy sums all phases at delta: the expected number of
// in-flight neighbors at that moment.
func (pp *PipelineProfile) TotalOccupancy(delta int64) (float64, bool) {
	var sum float64
	for ph := PipelinePhase(0); ph < NumPhases; ph++ {
		v, ok := pp.Occupancy(delta, ph)
		if !ok {
			return 0, false
		}
		sum += v
	}
	return sum, true
}

// Render prints occupancy rows sampled every step cycles.
func (pp *PipelineProfile) Render(step int64) string {
	if step < 1 {
		step = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline state around pc %#x (%d pair views, scale W=%d)\n",
		pp.TargetPC, pp.pairs, pp.W)
	fmt.Fprintf(&b, "%8s", "delta")
	for ph := PipelinePhase(0); ph < NumPhases; ph++ {
		fmt.Fprintf(&b, " %12s", ph)
	}
	fmt.Fprintf(&b, " %12s\n", "total")
	for d := pp.MinDelta; d <= pp.MaxDelta; d += step {
		fmt.Fprintf(&b, "%8d", d)
		var total float64
		for ph := PipelinePhase(0); ph < NumPhases; ph++ {
			v, _ := pp.Occupancy(d, ph)
			total += v
			fmt.Fprintf(&b, " %12.1f", v)
		}
		fmt.Fprintf(&b, " %12.1f\n", total)
	}
	return b.String()
}
