package profile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// SaveFile writes the database to path crash-safely: the envelope is
// written to a temporary file in the same directory, fsynced, and renamed
// over path. A failure at any point leaves whatever was previously at
// path untouched and removes the temporary, so readers only ever see the
// old image or the complete new one — never a truncated hybrid.
func SaveFile(db *DB, path string) error {
	return WriteAtomic(path, db.Save)
}

// LoadFile reads a database written by SaveFile (or any Save output on
// disk), with the envelope's CRC and version checks applied.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("profile: load %s: %w", path, err)
	}
	defer f.Close()
	db, err := LoadDB(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return db, nil
}

// WriteAtomic writes a file via the temp-file + fsync + rename pattern
// shared by SaveFile and the fleet checkpointer: write writes the content
// to the temporary, and only a fully synced temporary is renamed onto
// path. On error the temporary is removed and path is left as it was.
func WriteAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("profile: atomic write %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("profile: atomic write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("profile: atomic write %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("profile: atomic write %s: close: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("profile: atomic write %s: %w", path, err)
	}
	// Sync the directory so the rename itself survives power loss. A
	// rename that is not durable breaks the atomic-write contract (a
	// crash could resurrect the old image after the new one was
	// acknowledged), so failures propagate — except filesystems that
	// cannot fsync a directory at all, where the rename is as durable as
	// that filesystem gets.
	if err = syncDir(dir); err != nil {
		return fmt.Errorf("profile: atomic write %s: dir sync: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory, tolerating only filesystems where the
// operation is unsupported (EINVAL/ENOTSUP spellings vary; Go maps them
// to errors.ErrUnsupported where it can).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return d.Close()
}
