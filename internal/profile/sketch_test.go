package profile

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"profileme/internal/core"
	"profileme/internal/stats"
)

// zipfStream draws a skewed stream of PCs: rank r gets weight ~ 1/(r+1),
// the shape that makes heavy-hitter sketches earn their keep.
func zipfStream(rng *stats.RNG, distinct, draws int) []uint64 {
	cum := make([]float64, distinct)
	total := 0.0
	for i := 0; i < distinct; i++ {
		total += 1 / float64(i+1)
		cum[i] = total
	}
	out := make([]uint64, draws)
	for i := range out {
		x := rng.Float64() * total
		j := sort.SearchFloat64s(cum, x)
		if j >= distinct {
			j = distinct - 1
		}
		out[i] = 0x400000 + 8*uint64(j)
	}
	return out
}

// TestSpaceSavingBounds is the sketch's property test: on seeded skewed
// streams, every estimate obeys est-err <= true <= est, the error never
// exceeds the floor (<= N/K), and every PC whose true count exceeds N/K
// is tracked (the Metwally heavy-hitter guarantee).
func TestSpaceSavingBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := rng.IntRange(8, 64)
		distinct := rng.IntRange(k/2, 8*k)
		draws := rng.IntRange(1000, 20000)
		sk := NewSpaceSaving(k)
		truth := make(map[uint64]uint64)
		for _, pc := range zipfStream(rng, distinct, draws) {
			w := uint64(rng.IntRange(1, 4))
			sk.Add(pc, w)
			truth[pc] += w
		}
		var n uint64
		for _, c := range truth {
			n += c
		}
		if sk.N() != n {
			t.Errorf("seed %d: N=%d want %d", seed, sk.N(), n)
			return false
		}
		floor := sk.MinCount()
		if floor > n/uint64(k) {
			t.Errorf("seed %d: floor %d exceeds N/K=%d", seed, floor, n/uint64(k))
			return false
		}
		for _, e := range sk.Items() {
			tc := truth[e.PC]
			if e.Count < tc || e.Count-e.Err > tc {
				t.Errorf("seed %d: pc %#x est %d err %d true %d", seed, e.PC, e.Count, e.Err, tc)
				return false
			}
			if e.Err > floor {
				t.Errorf("seed %d: pc %#x err %d above floor %d", seed, e.PC, e.Err, floor)
				return false
			}
		}
		for pc, tc := range truth {
			if tc > floor {
				if _, ok := sk.Get(pc); !ok {
					t.Errorf("seed %d: heavy hitter %#x (true %d > floor %d) untracked", seed, pc, tc, floor)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSpaceSavingExactWhenSmall pins the exactness contract the serving
// path relies on: with at most K distinct PCs the sketch IS the exact
// answer, in DB.HotPCs order, with zero error.
func TestSpaceSavingExactWhenSmall(t *testing.T) {
	sk := NewSpaceSaving(16)
	truth := map[uint64]uint64{0x10: 5, 0x20: 9, 0x30: 9, 0x40: 1, 0x50: 3}
	for pc, c := range truth {
		for i := uint64(0); i < c; i++ {
			sk.Add(pc, 1)
		}
	}
	items := sk.Items()
	want := []uint64{0x20, 0x30, 0x10, 0x50, 0x40} // count desc, PC asc
	if len(items) != len(want) {
		t.Fatalf("got %d items, want %d", len(items), len(want))
	}
	for i, e := range items {
		if e.PC != want[i] || e.Count != truth[e.PC] || e.Err != 0 {
			t.Fatalf("item %d = %+v, want pc %#x count %d err 0", i, e, want[i], truth[want[i]])
		}
	}
	if sk.MinCount() != 0 {
		t.Fatalf("non-full sketch floor = %d, want 0", sk.MinCount())
	}
}

// TestSpaceSavingMergeBounds verifies mergeability — the property the
// router's fleet scatter-gather depends on: the merged sketch keeps the
// never-undercount bound against the union stream's true counts.
func TestSpaceSavingMergeBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := rng.IntRange(8, 48)
		truth := make(map[uint64]uint64)
		build := func() *SpaceSaving {
			sk := NewSpaceSaving(k)
			distinct := rng.IntRange(k/2, 6*k)
			for _, pc := range zipfStream(rng, distinct, rng.IntRange(500, 8000)) {
				sk.Add(pc, 1)
				truth[pc]++
			}
			return sk
		}
		a, b := build(), build()
		m := Merge(a, b)
		if m.N() != a.N()+b.N() {
			t.Errorf("seed %d: merged N=%d want %d", seed, m.N(), a.N()+b.N())
			return false
		}
		for _, e := range m.Items() {
			tc := truth[e.PC]
			if e.Count < tc || e.Count-e.Err > tc {
				t.Errorf("seed %d: merged pc %#x est %d err %d true %d", seed, e.PC, e.Count, e.Err, tc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileSketchRelativeError checks the DDSketch bound on seeded
// streams: every reported percentile is within alpha relative error of
// the exact order statistic.
func TestQuantileSketchRelativeError(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		q := NewQuantileSketch(DefaultQuantileAlpha)
		n := rng.IntRange(500, 10000)
		vals := make([]float64, n)
		for i := range vals {
			// Latency-shaped: mostly small with a heavy tail.
			v := float64(rng.IntRange(2, 40))
			if rng.Bool(0.05) {
				v *= float64(rng.IntRange(10, 100))
			}
			vals[i] = v
			q.Add(v)
		}
		sort.Float64s(vals)
		for _, p := range []float64{0.5, 0.9, 0.99} {
			exact := vals[int(p*float64(n-1))]
			got := q.Quantile(p)
			if rel := math.Abs(got-exact) / exact; rel > q.Alpha()+1e-9 {
				t.Errorf("seed %d: p%.0f = %g, exact %g, rel err %.4f > alpha %.4f",
					seed, p*100, got, exact, rel, q.Alpha())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileSketchMerge: bucket-wise merging must equal having fed one
// sketch the concatenated stream (identical buckets, identical answers).
func TestQuantileSketchMerge(t *testing.T) {
	rng := stats.NewRNG(7)
	a, b, both := NewQuantileSketch(0), NewQuantileSketch(0), NewQuantileSketch(0)
	for i := 0; i < 3000; i++ {
		v := float64(rng.IntRange(1, 500))
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		both.Add(v)
	}
	a.MergeFrom(b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d want %d", a.Count(), both.Count())
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(p) != both.Quantile(p) {
			t.Fatalf("p=%v: merged %g, combined %g", p, a.Quantile(p), both.Quantile(p))
		}
	}
}

// TestWindowRing drives the time-bucketed ring with an explicit clock:
// in-window buckets count, out-of-window buckets expire, oversized
// requests clamp to the horizon, and long idle gaps reset cleanly.
func TestWindowRing(t *testing.T) {
	base := time.Unix(1000, 0)
	r := NewWindowRing(4, time.Second, 8)

	r.Add(base, 0xA, 3)
	r.Add(base.Add(1*time.Second), 0xB, 2)
	r.Add(base.Add(2*time.Second), 0xA, 1)

	now := base.Add(2500 * time.Millisecond)
	res := r.Query(now, 3*time.Second, 10)
	if res.Samples != 6 || res.Buckets != 3 || res.Clamped {
		t.Fatalf("full window: %+v", res)
	}
	if len(res.Rows) != 2 || res.Rows[0].PC != 0xA || res.Rows[0].Count != 4 || res.Rows[1].Count != 2 {
		t.Fatalf("full-window rows: %+v", res.Rows)
	}

	// A 1s lookback from base+2.5s covers [base+1.5s, base+2.5s]: the
	// base+2s bucket fully, and the base+1s bucket partially — bucket
	// granularity means a partially-overlapped bucket contributes whole.
	res = r.Query(now, time.Second, 10)
	if res.Samples != 3 || res.Buckets != 2 || res.Rows[0].PC != 0xB || res.Rows[0].Count != 2 {
		t.Fatalf("short window: %+v", res)
	}

	// Requests beyond the horizon clamp.
	res = r.Query(now, time.Minute, 10)
	if !res.Clamped || res.Window != 4*time.Second {
		t.Fatalf("clamp: %+v", res)
	}

	// Rotate to base+5s: the ring now covers [base+2s, base+6s), so the
	// base and base+1s buckets have been reused and their data is gone.
	r.Add(base.Add(5*time.Second), 0xC, 7)
	res = r.Query(base.Add(5*time.Second), 4*time.Second, 10)
	if res.Samples != 7+1 || len(res.Rows) != 2 || res.Rows[0].PC != 0xC {
		t.Fatalf("post-rotation: %+v", res)
	}

	// A gap longer than the whole ring resets it.
	r.Add(base.Add(time.Hour), 0xD, 1)
	res = r.Query(base.Add(time.Hour), 4*time.Second, 10)
	if res.Samples != 1 || len(res.Rows) != 1 || res.Rows[0].PC != 0xD {
		t.Fatalf("post-gap: %+v", res)
	}
}

// TestSafeDBSketchMatchesExact pins the serving contract for the common
// case (distinct PCs <= K): SafeDB.HotPCs (sketch view) and HotPCsExact
// (locked deep-copy scan) return identical rows, and the view's estimates
// are exact with zero error.
func TestSafeDBSketchMatchesExact(t *testing.T) {
	// PublishEvery:1 rebuilds rows on every add, so the view is never
	// stale relative to the live DB and the comparison below is exact.
	agg := NewSafeDBWith(NewDB(16, 0, 4), SketchConfig{PublishEvery: 1})
	for seed := uint64(0); seed < 6; seed++ {
		if err := agg.Merge(safeShard(seed)); err != nil {
			t.Fatal(err)
		}
	}
	rng := stats.NewRNG(42)
	for i := 0; i < 200; i++ {
		pc := 0x400 + 8*uint64(rng.Intn(13))
		agg.Add(core.Sample{First: rec(pc, true, 0, 1, 2, 3, 5, 9)})
	}

	sketch := agg.HotPCs(10)
	exact := agg.HotPCsExact(10)
	if len(sketch) != len(exact) {
		t.Fatalf("len mismatch: sketch %d exact %d", len(sketch), len(exact))
	}
	for i := range sketch {
		if sketch[i].PC != exact[i].PC || sketch[i].Samples != exact[i].Samples {
			t.Fatalf("row %d: sketch pc %#x/%d, exact pc %#x/%d",
				i, sketch[i].PC, sketch[i].Samples, exact[i].PC, exact[i].Samples)
		}
	}
	v := agg.View()
	for _, hv := range v.TopK {
		if hv.MaxErr != 0 || hv.Est != hv.Acc.Samples {
			t.Fatalf("small DB must be exact: %+v", hv)
		}
	}
}

// TestSafeDBSketchBoundsUnderOverflow forces approximation (more distinct
// PCs than K) and checks the published bounds hold against the live DB.
func TestSafeDBSketchBoundsUnderOverflow(t *testing.T) {
	// PublishEvery:1 keeps view rows in lockstep with the live DB: the
	// bounds below compare published estimates against live truth, which
	// is only valid when no adds have landed since the last row rebuild.
	agg := NewSafeDBWith(NewDB(16, 0, 4), SketchConfig{TopK: 32, PublishEvery: 1})
	rng := stats.NewRNG(9)
	for _, pc := range zipfStream(rng, 500, 4000) {
		agg.Add(core.Sample{First: rec(pc, true, 0, 1, 2, 3, 5, 9)})
	}
	v := agg.View()
	if v.Floor == 0 || v.SketchN == 0 {
		t.Fatalf("overflowed sketch should have a floor: %+v", v)
	}
	if v.Floor > v.SketchN/uint64(v.TopKCap) {
		t.Fatalf("floor %d exceeds N/K = %d", v.Floor, v.SketchN/uint64(v.TopKCap))
	}
	for _, hv := range v.TopK {
		truth, _ := agg.Get(hv.Acc.PC)
		if hv.Est < truth.Samples || hv.Est-hv.MaxErr > truth.Samples {
			t.Fatalf("pc %#x: est %d err %d true %d", hv.Acc.PC, hv.Est, hv.MaxErr, truth.Samples)
		}
	}
	// Every row the top-10 query returns must be a genuinely hot PC:
	// its true count must beat the guarantee threshold for absent PCs.
	for _, acc := range agg.HotPCs(10) {
		if acc.Samples == 0 {
			t.Fatalf("sketch served a never-sampled PC: %#x", acc.PC)
		}
	}
}

// TestSafeDBViewImmutableUnderRace is the race-hammered snapshot test:
// readers grab views and windowed answers while writers merge and add at
// full speed. Retained views must never change underneath the reader
// (epochs stay self-consistent, counters monotonic), and the final state
// is exact. Run with -race in CI.
func TestSafeDBViewImmutableUnderRace(t *testing.T) {
	agg := NewSafeDBWith(NewDB(16, 0, 4), SketchConfig{PublishEvery: 4})

	const writers, merges, readers = 4, 30, 6
	var wg sync.WaitGroup
	var stop atomic.Bool

	var wantSamples uint64
	for w := 0; w < writers; w++ {
		wantSamples += merges * 50 // safeShard adds 50 singles
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < merges; i++ {
				if err := agg.Merge(safeShard(uint64(w*merges + i))); err != nil {
					t.Error(err)
					return
				}
				agg.Add(core.Sample{First: rec(0x999, true, 0, 1, 2, 3, 5, 9)})
				agg.ReverseLoss(0) // exercise counter-only publishes
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for !stop.Load() {
				v := agg.View()
				if v.Epoch < lastEpoch {
					t.Error("epoch went backwards")
					return
				}
				lastEpoch = v.Epoch
				// An immutable view must be internally consistent no
				// matter how long we hold it: re-reading fields of the
				// SAME view must agree with themselves.
				c1, c2 := v.Counters, v.Counters
				if c1 != c2 {
					t.Error("view counters changed under reader")
					return
				}
				for i := range v.TopK {
					hv := &v.TopK[i]
					if hv.Est < hv.Acc.Samples {
						t.Errorf("view row under-estimates: est %d < samples %d", hv.Est, hv.Acc.Samples)
						return
					}
					if v.Get(hv.Acc.PC) != hv {
						t.Error("view byPC index inconsistent")
						return
					}
				}
				_ = agg.HotPCs(5)
				_ = agg.WindowHotPCs(30*time.Second, 5)
				_ = agg.CountersSnapshot()
			}
		}()
	}

	// Let writers finish, then release readers.
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	go func() {
		for i := 0; i < writers*merges; i++ {
			if agg.Samples() >= wantSamples+uint64(writers*merges) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		stop.Store(true)
	}()
	<-done

	got := agg.CountersSnapshot()
	want := wantSamples + writers*merges // merged singles + direct Adds
	if got.Samples != want {
		t.Fatalf("final samples = %d, want %d", got.Samples, want)
	}
	if agg.View().Counters != got {
		t.Fatal("published view disagrees with CountersSnapshot")
	}
}

// TestViewLatencySummaries checks that the published quantile summaries
// cover every latency kind plus in-progress, with counts and bounded
// error, after both Add- and Merge-path feeding.
func TestViewLatencySummaries(t *testing.T) {
	agg := NewSafeDB(NewDB(16, 0, 4))
	for i := 0; i < 100; i++ {
		agg.Add(core.Sample{First: rec(0x40, true, 0, 1, 2, 3, 50, 100)})
	}
	if err := agg.Merge(safeShard(3)); err != nil {
		t.Fatal(err)
	}
	v := agg.View()
	if len(v.Latencies) != NumLatencyKinds+1 {
		t.Fatalf("got %d summaries, want %d", len(v.Latencies), NumLatencyKinds+1)
	}
	byKind := map[string]QuantileSummary{}
	for _, s := range v.Latencies {
		byKind[s.Kind] = s
	}
	ip, ok := byKind["inprogress"]
	if !ok || ip.Count == 0 {
		t.Fatalf("missing inprogress summary: %+v", v.Latencies)
	}
	// The Add-path stream fed 100 identical fetch->retire-ready spans of
	// 50 cycles plus the shard's; p50 must be within alpha of 50 or the
	// shard's 5 — either way far from zero and positive.
	if ip.P50 <= 0 || ip.RelError != DefaultQuantileAlpha {
		t.Fatalf("inprogress summary wrong: %+v", ip)
	}
}
