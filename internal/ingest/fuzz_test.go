package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"profileme/internal/profile"
)

// FuzzDecodeSubmit feeds the HTTP submission decoder arbitrary bytes —
// the same contract FuzzLoadDB pins for the disk envelope, lifted to the
// wire: every rejection is typed (ErrBadSubmit for envelope damage,
// profile.ErrCorrupt/ErrTruncated/ErrVersionSkew for payload damage),
// never a panic or an unbounded allocation, and an accepted submission is
// immediately usable for queries and loss accounting.
func FuzzDecodeSubmit(f *testing.F) {
	// Seed deep inside the grammar: a valid submission plus structured
	// mutants (truncated inner envelope, flipped payload byte, wrong JSON
	// shapes, oversized length claims).
	db := testShard(7, 25)
	valid, err := EncodeSubmit("compress/s003", db)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)

	var env submitEnvelope
	if err := json.Unmarshal(valid, &env); err != nil {
		f.Fatal(err)
	}
	trunc, _ := json.Marshal(submitEnvelope{Shard: env.Shard, Profile: env.Profile[:len(env.Profile)/2]})
	f.Add(trunc)
	flipped := append([]byte(nil), env.Profile...)
	flipped[len(flipped)/2] ^= 0x20
	mut, _ := json.Marshal(submitEnvelope{Shard: env.Shard, Profile: flipped})
	f.Add(mut)
	noShard, _ := json.Marshal(submitEnvelope{Profile: env.Profile})
	f.Add(noShard)
	f.Add([]byte(`{"shard":"x","profile":""}`))
	f.Add([]byte(`{"shard":"x","profile":"AAAA"}`))
	f.Add([]byte(`{"shard":123}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeSubmit(data)
		if err != nil {
			if !errors.Is(err, ErrBadSubmit) &&
				!errors.Is(err, profile.ErrCorrupt) &&
				!errors.Is(err, profile.ErrTruncated) &&
				!errors.Is(err, profile.ErrVersionSkew) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted: the submission must be queryable and accountable.
		if got.Shard == "" || got.DB == nil {
			t.Fatalf("accepted submission incomplete: %+v", got)
		}
		_ = got.Captured()
		for _, pc := range got.DB.PCs() {
			got.DB.EstimatedCount(pc)
		}
		_ = got.DB.Report(nil, 10)
	})
}

// TestDecodeSubmitRoundTrip pins the happy path: what EncodeSubmit
// writes, DecodeSubmit reads back with identical totals.
func TestDecodeSubmitRoundTrip(t *testing.T) {
	db := testShard(3, 40)
	db.RecordLoss(5)
	body, err := EncodeSubmit("li/s001", db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSubmit(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != "li/s001" {
		t.Fatalf("shard %q", got.Shard)
	}
	if got.DB.Samples() != db.Samples() || got.DB.Lost() != db.Lost() {
		t.Fatalf("round-trip totals %d/%d, want %d/%d",
			got.DB.Samples(), got.DB.Lost(), db.Samples(), db.Lost())
	}
	if got.Captured() != db.Samples()+db.Lost() {
		t.Fatalf("captured %d", got.Captured())
	}
	var buf bytes.Buffer
	if err := got.DB.Save(&buf); err != nil {
		t.Fatalf("decoded database not re-saveable: %v", err)
	}
}
