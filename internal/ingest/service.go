package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"profileme/internal/profile"
	"profileme/internal/wal"
)

// Typed admission failures. The HTTP layer maps each to a status code;
// the remote-submit sink maps the statuses back to its retry taxonomy.
var (
	// ErrQueueFull: the bounded queue refused the submission (RejectNew
	// policy). Transient — back off and retry (HTTP 429).
	ErrQueueFull = errors.New("ingest: queue full")
	// ErrDraining: the service is shutting down and no longer admits
	// work. Transient — retry against a healthy replica (HTTP 503).
	ErrDraining = errors.New("ingest: draining, not accepting submissions")
	// ErrConfigMismatch: the shard's sampling configuration cannot merge
	// into this aggregate. Permanent — retrying cannot help (HTTP 409).
	ErrConfigMismatch = errors.New("ingest: shard sampling configuration does not match aggregate")
	// ErrDuplicate: a shard with this id is already queued or merged.
	// The submission is acknowledged without re-merging (HTTP 202 with a
	// duplicate marker), so a client retrying after a lost response
	// cannot double-count its samples.
	ErrDuplicate = errors.New("ingest: duplicate shard submission")
	// ErrHandedOff: this instance already shipped its aggregate to its
	// ring successor; accepting anything afterwards would strand samples
	// outside the fleet-wide conservation sum.
	ErrHandedOff = errors.New("ingest: aggregate already handed off")
	// ErrWAL: the write-ahead log could not make the submission durable
	// (append or fsync failure). Transient from the client's view — the
	// submission was NOT acknowledged, so a retry against a healthy
	// replica is safe (HTTP 503).
	ErrWAL = errors.New("ingest: write-ahead log unavailable")
)

// Config parameterizes a Service. Zero values get usable defaults.
type Config struct {
	// QueueDepth bounds the ingest queue (default 64).
	QueueDepth int
	// Policy is the queue overflow policy (default RejectNew).
	Policy Policy
	// Interval/Window/Width define the aggregate's sampling configuration
	// when starting empty (defaults 512 / 0 / 4); ignored when a seed
	// database is supplied. Submissions must match or are refused with
	// ErrConfigMismatch.
	Interval float64
	Window   int
	Width    int
	// CheckpointPath enables circuit-broken atomic persistence of the
	// aggregate ("" = in-memory only).
	CheckpointPath string
	// CheckpointEvery checkpoints after this many merged submissions
	// (default 1: every merge, like the fleet supervisor).
	CheckpointEvery int
	// BreakerThreshold consecutive checkpoint failures open the breaker
	// (default 3); BreakerCooldown is the open period before a half-open
	// probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// WALDir enables crash durability: every submission is appended to a
	// write-ahead log there and fsynced BEFORE Submit returns, so the 202
	// is a durability contract, not a hope. "" disables the WAL (the
	// pre-WAL behavior: a crash loses everything since the last
	// checkpoint). Checkpoints become WAL barriers; segments wholly
	// covered by a checkpoint are reclaimed.
	WALDir string
	// FsyncWindow is the group-commit coalescing window (see wal.Config;
	// default 0 = natural batching, where concurrent submits share
	// whatever fsync is already in flight).
	FsyncWindow time.Duration
	// WALSegmentBytes / WALSegmentAge bound segment rotation (defaults
	// from wal.Config: 8 MiB, no age limit).
	WALSegmentBytes int64
	WALSegmentAge   time.Duration
	// WALStallAfter marks the WAL stalled — readiness degrades — when
	// the oldest staged-but-unsynced record is older than this (default
	// 10s). A stalled WAL means fsync has stopped completing: the
	// instance must go unready BEFORE it starts losing data.
	WALStallAfter time.Duration
	// SketchTopK sizes the aggregate's space-saving hot-PC sketch
	// (default 512); hot-PC queries for n <= SketchTopK serve O(n) from
	// the lock-free published view. SketchWindowBuckets of
	// SketchWindowBucket each define the windowed-query ring (defaults
	// 60 × 1s: a one-minute horizon). See profile.SketchConfig.
	SketchTopK          int
	SketchWindowBuckets int
	SketchWindowBucket  time.Duration

	// Log receives progress and degradation lines (nil = silent).
	Log io.Writer

	persist   func() error         // test seam; nil = WriteAtomic of the aggregate
	mergeHook func(Submission)     // test seam; called before each merge
	walFsync  func(*os.File) error // test seam; threaded to wal.Config.fsync
}

func (c *Config) normalize() error {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Interval == 0 {
		c.Interval = 512
	}
	if c.Width == 0 {
		c.Width = 4
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.WALStallAfter == 0 {
		c.WALStallAfter = 10 * time.Second
	}
	switch {
	case c.QueueDepth < 1:
		return fmt.Errorf("ingest: queue depth %d", c.QueueDepth)
	case c.Interval < 1:
		return fmt.Errorf("ingest: interval %g < 1", c.Interval)
	case c.Window < 0:
		return fmt.Errorf("ingest: negative window %d", c.Window)
	case c.Width < 1:
		return fmt.Errorf("ingest: issue width %d", c.Width)
	case c.CheckpointEvery < 1:
		return fmt.Errorf("ingest: checkpoint every %d", c.CheckpointEvery)
	}
	return nil
}

// Stats is a full snapshot of the service's health counters — the
// /v1/stats payload.
type Stats struct {
	Queue   QueueStats   `json:"queue"`
	Breaker BreakerStats `json:"breaker"`

	Merged      uint64 `json:"merged"`       // submissions folded into the aggregate
	MergeFailed uint64 `json:"merge_failed"` // accepted but unmergeable (accounted as loss)

	OverloadRejected uint64 `json:"overload_rejected"`     // refusal responses (429/503), retries included
	OverloadDropped  uint64 `json:"overload_dropped"`      // evicted by DropOldest
	Duplicates       uint64 `json:"duplicate_submissions"` // resubmissions of admitted shards (deduped)

	// SamplesLost mirrors the aggregate's overload/drain loss ledger: it
	// counts each refused shard's captured samples once, no matter how
	// many times the shard was refused, and goes back DOWN when a refused
	// shard is later accepted on retry (the loss is reversed).
	SamplesLost uint64 `json:"samples_lost"`
	// LossReversed totals the reversals, so SamplesLost + LossReversed is
	// the high-water mark of loss ever recorded.
	LossReversed uint64 `json:"samples_loss_reversed"`

	Checkpoints        uint64 `json:"checkpoints"`
	CheckpointFailures uint64 `json:"checkpoint_failures"`
	CheckpointShorted  uint64 `json:"checkpoint_short_circuited"`

	// Handoff accounting: HandoffsIn counts donor aggregates merged into
	// this instance during peer drains, HandoffCaptured their total
	// captured samples (delivered + lost) — the amount of fleet-wide
	// accounting that migrated here. HandedOff flips when THIS instance
	// shipped its aggregate away.
	HandoffsIn      uint64 `json:"handoffs_in"`
	HandoffCaptured uint64 `json:"handoff_captured"`
	HandedOff       bool   `json:"handed_off"`
	// AdoptedShards counts shard ids taken over via ledger adoption
	// during membership changes — dedupe obligations, not samples.
	AdoptedShards uint64 `json:"adopted_shards"`

	Draining bool `json:"draining"`
	// Sealed means admission is closed for a handoff export: refusals no
	// longer record loss (nothing after the export snapshot may mutate
	// the books this instance will ship).
	Sealed bool `json:"sealed"`

	// WAL is the write-ahead log's health section, nil when the WAL is
	// disabled. The Router's health tracker reads Stalled to degrade an
	// instance whose fsyncs have stopped completing.
	WAL *WALHealth `json:"wal,omitempty"`

	// Aggregate rollup.
	Samples  uint64  `json:"samples"`
	Lost     uint64  `json:"lost"`
	LossRate float64 `json:"loss_rate"`

	// Sketch is the streaming-summary layer's health: view epoch, top-K
	// occupancy, error floor, window geometry (see profile.SketchStats).
	Sketch profile.SketchStats `json:"sketch"`
}

// WALHealth is the /v1/stats "wal" section: the log's own counters plus
// the service-level replay and pending figures the log cannot know.
type WALHealth struct {
	Segments          int    `json:"segments"`
	SegmentSeq        uint64 `json:"segment_seq"`
	AppendedBytes     int64  `json:"appended_bytes"`
	BytesSinceBarrier int64  `json:"bytes_since_barrier"`
	Appends           uint64 `json:"appends"`
	Syncs             uint64 `json:"syncs"`
	SyncErrors        uint64 `json:"sync_errors"`
	Rotations         uint64 `json:"rotations"`
	// LastSyncAgeMS is how long ago the last successful fsync finished;
	// OldestPendingAgeMS how long the oldest staged-but-unsynced record
	// has been waiting (0 when nothing is pending).
	LastSyncAgeMS      int64 `json:"last_sync_age_ms"`
	OldestPendingAgeMS int64 `json:"oldest_pending_age_ms"`
	// PendingRecords counts admitted-but-unresolved WAL records (staged
	// admits/handoffs the aggregator has not merged yet) — the records a
	// checkpoint barrier must not pass.
	PendingRecords int `json:"pending_records"`
	// ReplayRecords / ReplayDurationMS report the recovery replay at
	// boot (the WAL's boot-latency cost).
	ReplayRecords    int   `json:"replay_records"`
	ReplayDurationMS int64 `json:"replay_duration_ms"`
	// Stalled is true when OldestPendingAge exceeded Config.WALStallAfter
	// — fsync has stopped completing and readiness must degrade.
	Stalled bool `json:"stalled"`
	// Wedged is true when a write or fsync failure permanently stopped
	// the log: every submission answers 503 until a restart replays what
	// survived. Strictly worse than Stalled; readiness must degrade.
	Wedged bool `json:"wedged"`
}

// Service owns the ingest pipeline: HTTP handlers Submit, one aggregator
// goroutine merges, the breaker guards persistence, Drain flushes and
// writes the final checkpoint. The aggregate lives behind a
// profile.SafeDB, so queries run concurrently with ingest.
type Service struct {
	cfg Config
	agg *profile.SafeDB
	q   *Queue
	brk *Breaker

	wantS        float64
	wantW, wantC int
	wantTNear    int64

	draining  atomic.Bool
	sealed    atomic.Bool
	started   atomic.Bool
	handedOff atomic.Bool
	done      chan struct{}

	mu          sync.Mutex
	merged      uint64
	mergeFail   uint64
	rejected    uint64
	dropped     uint64
	dupes       uint64
	lostSamp    uint64
	lostRev     uint64
	ckptOK      uint64
	ckptFail    uint64
	ckptShort   uint64
	handoffsIn  uint64
	handoffCapt uint64
	sinceCkpt   int

	// Shard admission ledger (guarded by mu). admitted holds shard ids
	// that are queued or merged — a resubmission dedupes to ErrDuplicate
	// instead of merging twice (a lost 202 makes honest clients retry
	// delivered shards). refusedLoss maps shard ids whose captured
	// samples sit in the aggregate's loss ledger (429/503 refusals,
	// DropOldest evictions) to the exact count recorded, so a repeat
	// refusal accounts nothing new and an accepted retry reverses
	// precisely what was recorded. Memory grows with distinct shard ids,
	// which a campaign bounds by benchmarks × shards.
	admitted    map[string]bool
	refusedLoss map[string]uint64
	// inflight maps a reserved shard id to the WAL ticket its original
	// submission is still waiting on. A resubmission that finds its shard
	// admitted must NOT answer "duplicate" off the reservation alone —
	// the 202+duplicate is a durability receipt too, so the duplicate
	// path blocks on the same ticket and fails with ErrWAL if the
	// original's group commit fails. Entries exist only between Stage and
	// Wait; a shard with no entry is either durably logged or WAL-less.
	inflight map[string]*wal.Ticket
	// handoffFrom records ledger provenance: shard ids admitted here not
	// by direct submission but because a draining peer handed its ledger
	// over — the reason a retry of a donor-merged shard dedupes at the
	// successor instead of double-merging across a drain failover.
	handoffFrom map[string]string
	// handoffSeen maps applied handoff envelopes' content digests to the
	// captured total each acknowledged. A byte-identical redelivery (the
	// sender retrying after a lost ack) answers ErrDuplicate with the
	// original captured count instead of merging the donor's aggregate a
	// second time — the envelope-level twin of the per-shard admission
	// dedupe. Persisted in checkpoints and reconstructed by WAL replay.
	handoffSeen map[string]uint64
	// adopted counts shard ids this instance took over via ledger
	// adoption (membership changes): dedupe obligations whose samples
	// live elsewhere in the fleet.
	adopted uint64

	// WAL state (all guarded by mu except the log itself, which has its
	// own locking). applied holds shard ids the aggregator has RESOLVED
	// (merged or merge-failed-and-accounted) — the set a checkpoint
	// snapshots so replay can skip covered admit records; admitted minus
	// applied is "reserved or queued". pending maps staged WAL positions
	// to their unresolved records: the checkpoint barrier is min(pending)
	// so reclaim can never outrun an acknowledged-but-unmerged record.
	// appliedHandoffs keys applied handoff records by Pos.String() —
	// stable across replays — so a replayed handoff never double-merges.
	// handoffMu serializes AcceptHandoff calls end to end, making the
	// envelope dedupe check-then-apply atomic against a concurrent
	// delivery of the same envelope (netchaos duplicates requests in the
	// background, so this is a real interleaving, not a theoretical
	// one). Handoffs are rare control-plane events; coarse serialization
	// costs nothing. Ordered BEFORE mu (never acquire handoffMu while
	// holding mu).
	handoffMu sync.Mutex

	wal             *wal.Log
	walReplay       wal.ReplayInfo
	applied         map[string]bool
	pending         map[wal.Pos]struct{}
	appliedHandoffs map[string]bool
	replayedRecords int
}

// NewService builds a service. seed, when non-nil, becomes the aggregate
// (e.g. a checkpoint reloaded at startup) and defines the sampling
// configuration; otherwise an empty aggregate is built from cfg. With
// cfg.WALDir set, any existing WAL tail there is replayed into the seed
// (with an empty ledger — use Recover to restart from checkpoint + WAL).
func NewService(cfg Config, seed *profile.DB) (*Service, error) {
	return newService(cfg, seed, nil)
}

// RecoveryInfo reports what Recover reconstructed.
type RecoveryInfo struct {
	// CheckpointLoaded is true when a checkpoint seeded the state;
	// CheckpointQuarantined when a damaged one was set aside (.corrupt)
	// and recovery proceeded from the WAL alone.
	CheckpointLoaded      bool
	CheckpointQuarantined bool
	// LegacyCheckpoint is true when the checkpoint was a pre-WAL bare
	// profile database (no ledger, no barrier).
	LegacyCheckpoint bool
	// Replay is the WAL scan: records re-applied or skipped, repairs.
	Replay wal.ReplayInfo
	// Replayed counts records actually applied (not skipped as covered
	// by the checkpoint ledger).
	Replayed int
}

// Recover restarts a service from its durable state: the checkpoint (if
// any) seeds the aggregate and the admission ledger, then the WAL tail
// is replayed on top, truncating at the first torn record. A corrupt
// checkpoint is quarantined (.corrupt) and recovery proceeds from the
// WAL alone — conservation then rests on whatever the WAL retains.
// cfg.WALDir may be "" (plain checkpoint restart, no WAL).
func Recover(cfg Config) (*Service, RecoveryInfo, error) {
	var info RecoveryInfo
	var ck *Checkpoint
	if cfg.CheckpointPath != "" {
		var err error
		ck, err = LoadCheckpointFile(cfg.CheckpointPath)
		switch {
		case err == nil:
			info.CheckpointLoaded = ck != nil
		case errors.Is(err, profile.ErrCorrupt) || errors.Is(err, profile.ErrTruncated):
			if qerr := QuarantineCheckpoint(cfg.CheckpointPath); qerr != nil {
				return nil, info, fmt.Errorf("ingest: recover: quarantine damaged checkpoint: %v (load error: %w)", qerr, err)
			}
			info.CheckpointQuarantined = true
			ck = nil
		default:
			return nil, info, err
		}
	}
	var seed *profile.DB
	if ck != nil && len(ck.Profile) > 0 {
		db, err := profile.LoadDB(bytes.NewReader(ck.Profile))
		if err != nil {
			return nil, info, fmt.Errorf("ingest: recover: checkpoint profile: %w", err)
		}
		seed = db
		info.LegacyCheckpoint = ck.Applied == nil && ck.RefusedLoss == nil && ck.Barrier.IsZero()
	}
	s, err := newService(cfg, seed, ck)
	if err != nil {
		return nil, info, err
	}
	info.Replay = s.walReplay
	info.Replayed = s.replayedRecords
	return s, info, nil
}

// newService is the shared constructor: build the service, install the
// checkpoint ledger, then open the WAL (replaying its tail into the
// service through the ledger's skip logic).
func newService(cfg Config, seed *profile.DB, ck *Checkpoint) (*Service, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	q, err := NewQueue(cfg.QueueDepth, cfg.Policy)
	if err != nil {
		return nil, err
	}
	if seed == nil {
		seed = profile.NewDB(cfg.Interval, cfg.Window, cfg.Width)
	}
	s := &Service{
		cfg: cfg,
		agg: profile.NewSafeDBWith(seed, profile.SketchConfig{
			TopK:          cfg.SketchTopK,
			WindowBuckets: cfg.SketchWindowBuckets,
			BucketDur:     cfg.SketchWindowBucket,
		}),
		q:               q,
		brk:             NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		done:            make(chan struct{}),
		admitted:        make(map[string]bool),
		refusedLoss:     make(map[string]uint64),
		inflight:        make(map[string]*wal.Ticket),
		handoffFrom:     make(map[string]string),
		handoffSeen:     make(map[string]uint64),
		applied:         make(map[string]bool),
		pending:         make(map[wal.Pos]struct{}),
		appliedHandoffs: make(map[string]bool),
	}
	s.wantS, s.wantW, s.wantC, s.wantTNear = s.agg.SamplingConfig()
	if ck != nil {
		for _, sh := range ck.Applied {
			s.admitted[sh] = true
			s.applied[sh] = true
		}
		for sh, n := range ck.RefusedLoss {
			s.refusedLoss[sh] = n
			s.lostSamp += n
		}
		for sh, from := range ck.HandoffFrom {
			s.handoffFrom[sh] = from
			s.admitted[sh] = true
		}
		for _, key := range ck.AppliedHandoffs {
			s.appliedHandoffs[key] = true
		}
		for key, captured := range ck.HandoffKeys {
			s.handoffSeen[key] = captured
		}
	}
	if cfg.WALDir != "" {
		l, rinfo, err := wal.Open(wal.Config{
			Dir:          cfg.WALDir,
			SegmentBytes: cfg.WALSegmentBytes,
			SegmentAge:   cfg.WALSegmentAge,
			FsyncWindow:  cfg.FsyncWindow,
			Fsync:        cfg.walFsync,
		}, s.replayRecord)
		if err != nil {
			return nil, fmt.Errorf("ingest: wal: %w", err)
		}
		s.wal = l
		s.walReplay = rinfo
		if rinfo.Records > 0 || rinfo.Truncated {
			s.logf("wal replay: %d records (%d applied) from %d segments in %s%s",
				rinfo.Records, s.replayedRecords, rinfo.Segments, rinfo.Duration.Round(time.Millisecond),
				map[bool]string{true: fmt.Sprintf(", truncated at %v (%d segments quarantined)", rinfo.TruncatedAt, rinfo.Quarantined), false: ""}[rinfo.Truncated])
		}
	}
	if s.cfg.persist == nil {
		if s.wal != nil {
			s.cfg.persist = s.persistCheckpoint
		} else {
			s.cfg.persist = func() error {
				return profile.WriteAtomic(s.cfg.CheckpointPath, s.agg.Save)
			}
		}
	}
	return s, nil
}

// Aggregate returns the shared aggregate database.
func (s *Service) Aggregate() *profile.SafeDB { return s.agg }

// Breaker returns the persistence circuit breaker (readiness probes
// inspect its state).
func (s *Service) Breaker() *Breaker { return s.brk }

// QueueDepth returns the current backlog (load-shedding input).
func (s *Service) QueueDepth() int { return s.q.Len() }

// Draining reports whether a drain has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// Start launches the aggregator goroutine.
func (s *Service) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go s.run()
}

// Submit admits one decoded submission into the queue. On refusal the
// shard's captured samples are recorded as aggregate loss — overload
// degrades the estimates' precision, never their centring — and a typed
// error says why. The admission ledger keeps the accounting exact under
// the client's retry taxonomy (429/503 are transient, transport
// failures retried):
//
//   - a shard already queued or merged dedupes to ErrDuplicate, never
//     merging or accounting twice, even mid-drain;
//   - a shard refused more than once is loss-accounted exactly once;
//   - a previously refused shard that is now accepted has its recorded
//     loss reversed before it merges.
//
// A config-mismatched shard is refused WITHOUT loss accounting —
// checked before everything else, draining included: its samples were
// never part of this aggregate's population.
func (s *Service) Submit(sub Submission) error {
	if err := s.compatible(sub.DB); err != nil {
		return err
	}
	// Cheap duplicate pre-check before paying for WAL encoding (retries
	// of delivered shards are the common case under a flaky network).
	s.mu.Lock()
	if s.admitted[sub.Shard] {
		t := s.inflight[sub.Shard]
		s.mu.Unlock()
		return s.awaitDuplicate(t)
	}
	s.mu.Unlock()
	// A sealed service (handoff export in progress) refuses NEW shards
	// with zero side effects — no WAL record, no reservation, no loss
	// accounting. The export snapshot is the last word on this
	// instance's books; a post-seal refusal that recorded loss would add
	// a pair the shipped envelope cannot carry, breaking the fleet sum
	// when the donor's local state is later quarantined. Duplicates of
	// already-admitted shards (above) still answer honestly: their
	// samples are in the envelope and will live on at the receiver.
	if s.sealed.Load() {
		return ErrDraining
	}
	// Serialize the WAL record outside any lock: gob encoding is the
	// expensive part and needs nothing shared.
	var rec []byte
	if s.wal != nil {
		var err error
		if rec, err = encodeAdmitRecord(sub); err != nil {
			return fmt.Errorf("%w: encode: %v", ErrWAL, err)
		}
	}
	// Reserve the shard id before touching the queue so two racing
	// submissions of the same shard cannot both merge; the reservation is
	// released again on refusal. The WAL record is staged in the same
	// critical section so its position is registered in the pending set
	// before any checkpoint can compute a barrier past it — otherwise a
	// reclaim racing this Submit could erase an acknowledged record
	// before the aggregator resolves it.
	var ticket *wal.Ticket
	s.mu.Lock()
	if s.admitted[sub.Shard] {
		t := s.inflight[sub.Shard]
		s.mu.Unlock()
		return s.awaitDuplicate(t)
	}
	if s.wal != nil {
		pos, t, err := s.wal.Stage(rec)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("%w: %v", ErrWAL, err)
		}
		sub.walPos = pos
		s.pending[pos] = struct{}{}
		s.inflight[sub.Shard] = t
		ticket = t
	}
	s.admitted[sub.Shard] = true
	s.mu.Unlock()
	// Group commit: wait for the batched fsync. Only after this returns
	// is the record durable and the 202 honest. On sync failure nothing
	// was acknowledged, so back the reservation out and send the client
	// elsewhere (any duplicate that waited on the same ticket answers
	// ErrWAL too, never a false receipt).
	if ticket != nil {
		err := ticket.Wait()
		s.mu.Lock()
		if s.inflight[sub.Shard] == ticket {
			delete(s.inflight, sub.Shard)
		}
		if err != nil {
			delete(s.admitted, sub.Shard)
			delete(s.pending, sub.walPos)
			s.mu.Unlock()
			return fmt.Errorf("%w: fsync: %v", ErrWAL, err)
		}
		s.mu.Unlock()
	}
	if s.draining.Load() {
		s.refuse(sub, &s.rejected)
		return ErrDraining
	}
	dropped, res := s.q.Offer(sub)
	for _, d := range dropped {
		s.refuse(d, &s.dropped)
		s.logf("overflow: dropped oldest shard %s (%d captured samples accounted as loss)", d.Shard, d.Captured())
	}
	switch res {
	case OfferClosed:
		// BeginDrain raced with this Submit: same contract as draining —
		// 503, not 429, so the client goes elsewhere instead of retrying
		// a shutting-down instance.
		s.refuse(sub, &s.rejected)
		return ErrDraining
	case OfferFull:
		s.refuse(sub, &s.rejected)
		return ErrQueueFull
	}
	// Accepted: if an earlier refusal of this shard was accounted as
	// loss, the samples are back in the pipeline — reverse the ledger.
	// Ledger and aggregate move together under mu so a checkpoint
	// snapshot can never see one without the other.
	s.mu.Lock()
	reversed, wasRefused := s.refusedLoss[sub.Shard]
	if wasRefused {
		delete(s.refusedLoss, sub.Shard)
		s.lostSamp -= reversed
		s.lostRev += reversed
		s.agg.ReverseLoss(reversed)
	}
	s.mu.Unlock()
	if wasRefused {
		s.logf("shard %s accepted on retry: %d previously accounted samples reversed out of the loss ledger", sub.Shard, reversed)
	}
	return nil
}

// awaitDuplicate resolves a resubmission of a reserved shard. The 202
// the caller will send is a durability receipt exactly like the
// original's, so when the original submission is still waiting on its
// group commit (t non-nil), the duplicate blocks on the SAME ticket: a
// successful commit yields ErrDuplicate (honest receipt), a failed one
// yields ErrWAL — the original backs its reservation out and this
// client retries elsewhere. t == nil means the record is already
// durable (or the WAL is disabled) and the receipt is immediate.
func (s *Service) awaitDuplicate(t *wal.Ticket) error {
	if t != nil {
		if err := t.Wait(); err != nil {
			return fmt.Errorf("%w: original submission's fsync failed: %v", ErrWAL, err)
		}
	}
	s.mu.Lock()
	s.dupes++
	s.mu.Unlock()
	return ErrDuplicate
}

// compatible refuses shards that DB.Merge would refuse, before they
// occupy queue space.
func (s *Service) compatible(db *profile.DB) error {
	if db.S != s.wantS || db.W != s.wantW || db.C != s.wantC || db.TNear != s.wantTNear {
		return fmt.Errorf("%w: shard (S=%g W=%d C=%d TNear=%d) vs aggregate (S=%g W=%d C=%d TNear=%d)",
			ErrConfigMismatch, db.S, db.W, db.C, db.TNear, s.wantS, s.wantW, s.wantC, s.wantTNear)
	}
	return nil
}

// refuse backs a shard out of admission (refused at the door or evicted
// by DropOldest): the reservation is released, the refusal counter
// bumped, and — only the first time this shard id is refused — its
// captured samples recorded as aggregate loss under its ledger entry.
func (s *Service) refuse(sub Submission, counter *uint64) {
	n := sub.Captured()
	s.mu.Lock()
	delete(s.admitted, sub.Shard)
	// The refusal resolves the staged WAL record: it leaves the pending
	// set (the barrier may pass it once the refusal itself is in a
	// checkpoint's ledger). No refusal record is written — on a crash the
	// retained admit record replays as a merge, which conserves the same
	// captured samples as Samples instead of Lost.
	if !sub.walPos.IsZero() {
		delete(s.pending, sub.walPos)
	}
	*counter++
	_, seen := s.refusedLoss[sub.Shard]
	// A refusal racing a seal (the submit slipped past the sealed check
	// before Seal, then found the queue closed) must NOT record loss:
	// the export snapshot may already be encoded, and a loss recorded
	// after it would stand in books that are about to be quarantined —
	// vanishing from the fleet sum. The client got a 503 and retries
	// elsewhere; the pair gets recorded wherever the shard finally lands.
	if !seen && !s.sealed.Load() {
		s.refusedLoss[sub.Shard] = n
		s.lostSamp += n
		// Ledger entry and aggregate loss move in one critical section so
		// a checkpoint snapshot sees both or neither.
		s.agg.RecordLoss(n)
	}
	s.mu.Unlock()
}

// run is the aggregator loop: single consumer, so the merge path itself
// needs no locking beyond SafeDB's.
func (s *Service) run() {
	defer close(s.done)
	for {
		sub, ok := s.q.Wait()
		if !ok {
			return
		}
		s.merge(sub)
	}
}

// merge folds one submission into the aggregate and checkpoints through
// the breaker on the configured cadence. The merge (or merge-failure
// loss accounting), the applied-ledger mark, and the pending-position
// release happen in one critical section: a checkpoint snapshot either
// sees the shard fully resolved or not at all, never half-applied.
func (s *Service) merge(sub Submission) {
	if s.cfg.mergeHook != nil {
		s.cfg.mergeHook(sub)
	}
	s.mu.Lock()
	err := s.agg.Merge(sub.DB)
	if err != nil {
		// Admission screens configurations, so this is rare (e.g. metric
		// registration skew) — but it still must be accounted, not lost.
		// The shard still joins the applied set: the failure is permanent
		// and deterministic, so a retry must dedupe and a replay must
		// skip (replaying would fail-and-account identically, but only
		// when the checkpoint predates the resolution).
		n := sub.Captured()
		s.agg.RecordLoss(n)
		s.mergeFail++
		s.lostSamp += n
	} else {
		s.merged++
	}
	s.applied[sub.Shard] = true
	if !sub.walPos.IsZero() {
		delete(s.pending, sub.walPos)
	}
	s.sinceCkpt++
	due := s.cfg.CheckpointPath != "" && s.sinceCkpt >= s.cfg.CheckpointEvery
	s.mu.Unlock()
	if err != nil {
		s.logf("merge failed for shard %s: %v (accounted as loss)", sub.Shard, err)
	}
	if due {
		s.checkpoint()
	}
}

// checkpoint persists the aggregate through the circuit breaker: an open
// breaker skips the write (counted, retried next cadence) instead of
// stalling ingest on a dead disk.
func (s *Service) checkpoint() {
	err := s.brk.Do(s.cfg.persist)
	s.mu.Lock()
	switch {
	case errors.Is(err, ErrBreakerOpen):
		s.ckptShort++
	case err != nil:
		s.ckptFail++
	default:
		s.ckptOK++
		s.sinceCkpt = 0
	}
	s.mu.Unlock()
	if err != nil && !errors.Is(err, ErrBreakerOpen) {
		s.logf("checkpoint failed: %v", err)
	}
}

// snapshotCheckpoint captures a consistent checkpoint under mu: the
// serialized aggregate, the full ledger, and the WAL barrier (the
// lowest pending position, or the head when nothing is in flight).
// Every state transition elsewhere is atomic under the same mutex, so
// the snapshot can never catch a ledger entry without its aggregate
// delta or vice versa. The file write happens outside the lock.
func (s *Service) snapshotCheckpoint() (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	if err := s.agg.Save(&buf); err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		Profile:         buf.Bytes(),
		Applied:         make([]string, 0, len(s.applied)),
		RefusedLoss:     make(map[string]uint64, len(s.refusedLoss)),
		HandoffFrom:     make(map[string]string, len(s.handoffFrom)),
		AppliedHandoffs: make([]string, 0, len(s.appliedHandoffs)),
	}
	for sh := range s.applied {
		ck.Applied = append(ck.Applied, sh)
	}
	sort.Strings(ck.Applied)
	for sh, n := range s.refusedLoss {
		ck.RefusedLoss[sh] = n
	}
	for sh, from := range s.handoffFrom {
		ck.HandoffFrom[sh] = from
	}
	for key := range s.appliedHandoffs {
		ck.AppliedHandoffs = append(ck.AppliedHandoffs, key)
	}
	sort.Strings(ck.AppliedHandoffs)
	ck.HandoffKeys = make(map[string]uint64, len(s.handoffSeen))
	for key, captured := range s.handoffSeen {
		ck.HandoffKeys[key] = captured
	}
	if s.wal != nil {
		ck.Barrier = s.wal.Head()
		for pos := range s.pending {
			if pos.Before(ck.Barrier) {
				ck.Barrier = pos
			}
		}
	}
	return ck, nil
}

// persistCheckpoint is the WAL-mode persist function: write the PMCK
// envelope atomically, then advance the WAL barrier and reclaim the
// segments the checkpoint now covers. Reclaim failure is logged, not
// fatal — the records are merely redundant, and the next checkpoint
// retries.
func (s *Service) persistCheckpoint() error {
	ck, err := s.snapshotCheckpoint()
	if err != nil {
		return err
	}
	if err := profile.WriteAtomic(s.cfg.CheckpointPath, func(w io.Writer) error {
		return WriteCheckpoint(w, ck)
	}); err != nil {
		return err
	}
	if s.wal != nil && !ck.Barrier.IsZero() {
		if _, err := s.wal.ReclaimBefore(ck.Barrier); err != nil {
			s.logf("wal reclaim below %v failed: %v", ck.Barrier, err)
		}
	}
	return nil
}

// BeginDrain stops admission (Submit starts refusing with ErrDraining)
// without waiting for the backlog. The HTTP layer calls this the moment
// SIGTERM arrives so readiness flips immediately.
func (s *Service) BeginDrain() {
	s.draining.Store(true)
}

// Seal closes admission for a handoff export: new shards are refused
// WITHOUT loss accounting (the export snapshot must be the final word
// on this instance's books), while duplicates of already-admitted
// shards keep answering honestly. The caller runs Flush next, then
// serializes the aggregate; see the export endpoint. Sealing is
// one-way — a donor whose removal aborts restarts its process to
// resume admission, which is the rollback path the runbook documents.
func (s *Service) Seal() {
	s.sealed.Store(true)
	s.draining.Store(true)
}

// Sealed reports whether admission is closed for export.
func (s *Service) Sealed() bool { return s.sealed.Load() }

// Flush is the first half of the graceful-shutdown sequence: stop
// admission and run the queued backlog through the aggregator, without
// persisting. It exists as its own step because a clustered drain must
// interpose between flush and final checkpoint: the fully-merged
// aggregate is handed to the ring successor, and only if that fails is
// the local FinalCheckpoint the fallback durability path.
func (s *Service) Flush(ctx context.Context) error {
	s.BeginDrain()
	s.q.Close()
	if s.started.Load() {
		select {
		case <-s.done:
		case <-ctx.Done():
			return fmt.Errorf("ingest: drain: %w", context.Cause(ctx))
		}
	} else {
		// Never started: flush the backlog inline.
		for {
			sub, ok := s.q.Wait()
			if !ok {
				break
			}
			s.merge(sub)
		}
	}
	return nil
}

// FinalCheckpoint writes the last persist of a drain, bypassing the
// breaker: at shutdown durability outranks availability and a stale
// open state must not discard the run. No-op without a checkpoint path.
func (s *Service) FinalCheckpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	if err := s.cfg.persist(); err != nil {
		return fmt.Errorf("ingest: final checkpoint: %w", err)
	}
	s.mu.Lock()
	s.ckptOK++
	s.mu.Unlock()
	return nil
}

// Drain completes the graceful-shutdown sequence: stop admission, flush
// the queued backlog through the aggregator, then write the final
// checkpoint. Returns when the aggregate is fully merged and durable
// (or ctx expires).
func (s *Service) Drain(ctx context.Context) error {
	if err := s.Flush(ctx); err != nil {
		return err
	}
	if err := s.FinalCheckpoint(); err != nil {
		return err
	}
	if s.cfg.CheckpointPath != "" {
		s.logf("drained: %d samples aggregated, %d lost (%.1f%% loss), final checkpoint at %s",
			s.agg.Samples(), s.agg.Lost(), 100*s.agg.LossRate(), s.cfg.CheckpointPath)
	}
	return nil
}

// AcceptHandoff merges a draining peer's aggregate and admission ledger
// into this instance — the tier's zero-loss rolling-restart path. The
// donor's shard ids join the admitted ledger (with provenance) BEFORE
// the merge, so a client retry racing the handoff dedupes instead of
// double-merging; the donor's loss ledger rides inside its DB, keeping
// the fleet-wide conservation sum intact. Returns the captured total
// (delivered + lost) that migrated. A draining or already-handed-off
// receiver refuses: the donor must walk to the next ring successor.
func (s *Service) AcceptHandoff(h Handoff) (captured uint64, err error) {
	s.handoffMu.Lock()
	defer s.handoffMu.Unlock()
	if s.handedOff.Load() {
		return 0, ErrHandedOff
	}
	if s.draining.Load() {
		return 0, ErrDraining
	}
	// Envelope-level dedupe: a byte-identical redelivery (the sender
	// retrying after a lost 202) answers ErrDuplicate with the captured
	// count the original acknowledged — merging it again would count the
	// donor's whole aggregate twice. Checked before the config screen so
	// even a sender whose retry raced a local config change dedupes.
	if h.Key != "" {
		s.mu.Lock()
		if prev, seen := s.handoffSeen[h.Key]; seen {
			s.dupes++
			s.mu.Unlock()
			return prev, ErrDuplicate
		}
		s.mu.Unlock()
	}
	if err := s.compatible(h.DB); err != nil {
		return 0, err
	}
	captured = h.DB.Samples() + h.DB.Lost()
	// WAL the whole handoff before applying it, like Submit: the donor
	// only quarantines its own durable state after our 200, so the
	// migrated samples must be durable here first. The record is keyed
	// by its WAL position (stable across replays) so a replay after a
	// crash applies it exactly once.
	var pos wal.Pos
	var ticket *wal.Ticket
	if s.wal != nil {
		rec, err := encodeHandoffRecord(h)
		if err != nil {
			return 0, fmt.Errorf("%w: encode handoff: %v", ErrWAL, err)
		}
		s.mu.Lock()
		var t *wal.Ticket
		pos, t, err = s.wal.Stage(rec)
		if err != nil {
			s.mu.Unlock()
			return 0, fmt.Errorf("%w: %v", ErrWAL, err)
		}
		s.pending[pos] = struct{}{}
		ticket = t
		s.mu.Unlock()
		if err := ticket.Wait(); err != nil {
			s.mu.Lock()
			delete(s.pending, pos)
			s.mu.Unlock()
			return 0, fmt.Errorf("%w: fsync: %v", ErrWAL, err)
		}
	}
	s.mu.Lock()
	mergeErr := s.applyHandoffLocked(h, captured)
	if !pos.IsZero() {
		s.appliedHandoffs[pos.String()] = true
		delete(s.pending, pos)
	}
	due := mergeErr == nil && s.cfg.CheckpointPath != "" && s.sinceCkpt >= s.cfg.CheckpointEvery
	s.mu.Unlock()
	if mergeErr != nil {
		return 0, fmt.Errorf("ingest: handoff from %s unmergeable (accounted as loss): %w", h.From, mergeErr)
	}
	s.logf("handoff from %s: %d captured samples (%d shards) merged", h.From, captured, len(h.Shards))
	if due {
		s.checkpoint()
	}
	return captured, nil
}

// applyHandoffLocked folds a handoff into ledger and aggregate in one
// atomic step — shared verbatim by the live path and WAL replay so a
// replayed handoff reconstructs the identical state. Caller holds mu.
func (s *Service) applyHandoffLocked(h Handoff, captured uint64) error {
	for _, sh := range h.Shards {
		if !s.admitted[sh] {
			s.admitted[sh] = true
			s.handoffFrom[sh] = h.From
		}
	}
	if h.Key != "" {
		s.handoffSeen[h.Key] = captured
	}
	s.handoffsIn++
	s.handoffCapt += captured
	if err := s.agg.Merge(h.DB); err != nil {
		// Past the config screen a merge failure is metric-set skew:
		// conserve by accounting the donor's whole captured population as
		// loss rather than silently dropping it from the fleet sum.
		s.agg.RecordLoss(captured)
		s.mergeFail++
		s.lostSamp += captured
		return err
	}
	s.sinceCkpt++
	return nil
}

// AdoptShards takes over dedupe obligations for shards whose ring
// ownership moved here during a membership change: each previously
// unknown shard id joins the admitted ledger with provenance `from`, so
// a client retry of a shard the old owner already merged answers
// 202+duplicate here instead of double-merging. No samples move —
// adoption is pure ledger. The adoption is WAL-durable before it
// returns (the router commits the ring change only after every adoption
// acked, so the ack must survive a crash). Returns how many ids were
// newly adopted; already-admitted ids are skipped silently.
func (s *Service) AdoptShards(from string, shards []string) (int, error) {
	if s.handedOff.Load() {
		return 0, ErrHandedOff
	}
	if s.sealed.Load() {
		return 0, ErrDraining
	}
	// Filter to the unseen ids first so the WAL record holds exactly
	// what this call changes (replay then reconstructs the same state
	// whether or not earlier records already admitted some of them).
	s.mu.Lock()
	fresh := make([]string, 0, len(shards))
	for _, sh := range shards {
		if !s.admitted[sh] {
			fresh = append(fresh, sh)
		}
	}
	s.mu.Unlock()
	if len(fresh) == 0 {
		return 0, nil
	}
	var pos wal.Pos
	var ticket *wal.Ticket
	if s.wal != nil {
		rec, err := encodeAdoptRecord(from, fresh)
		if err != nil {
			return 0, fmt.Errorf("%w: encode adopt: %v", ErrWAL, err)
		}
		s.mu.Lock()
		var t *wal.Ticket
		pos, t, err = s.wal.Stage(rec)
		if err != nil {
			s.mu.Unlock()
			return 0, fmt.Errorf("%w: %v", ErrWAL, err)
		}
		s.pending[pos] = struct{}{}
		ticket = t
		s.mu.Unlock()
		if err := ticket.Wait(); err != nil {
			s.mu.Lock()
			delete(s.pending, pos)
			s.mu.Unlock()
			return 0, fmt.Errorf("%w: fsync: %v", ErrWAL, err)
		}
	}
	s.mu.Lock()
	n := 0
	for _, sh := range fresh {
		if !s.admitted[sh] {
			s.admitted[sh] = true
			s.handoffFrom[sh] = from
			n++
		}
	}
	s.adopted += uint64(n)
	if !pos.IsZero() {
		delete(s.pending, pos)
	}
	s.mu.Unlock()
	if n > 0 {
		s.logf("adopted %d shard ids from %s (ledger only; their samples live elsewhere)", n, from)
	}
	return n, nil
}

// MarkHandedOff records that this instance's aggregate has been shipped
// to its ring successor; Stats report it and the daemon skips the final
// checkpoint (a restart from it would double-count the migrated
// samples).
func (s *Service) MarkHandedOff() { s.handedOff.Store(true) }

// HandedOff reports whether the aggregate has been handed off.
func (s *Service) HandedOff() bool { return s.handedOff.Load() }

// AdmittedShards returns the shard ids currently admitted (queued or
// merged), sorted — the ledger a drain handoff ships so the successor
// keeps deduping the donor's shards.
func (s *Service) AdmittedShards() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.admitted))
	for sh := range s.admitted {
		out = append(out, sh)
	}
	sort.Strings(out)
	return out
}

// HandoffProvenance reports which donor instance a shard id arrived
// from via drain handoff ("" when the shard was submitted directly or
// is unknown).
func (s *Service) HandoffProvenance(shard string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handoffFrom[shard]
}

// AppliedShards returns the shard ids the aggregator has RESOLVED here
// (merged, or merge-failed with loss accounted), sorted. Together with
// RefusedLosses and the handoff-captured counter this is one side of
// the per-instance conservation equation the nemesis audits:
//
//	Σ captured(applied) + Σ refusedLoss + handoffCaptured == Samples + Lost
func (s *Service) AppliedShards() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.applied))
	for sh := range s.applied {
		out = append(out, sh)
	}
	sort.Strings(out)
	return out
}

// RefusedLosses returns a copy of the standing-refusal ledger: shard id
// -> captured samples recorded as loss here and not (yet) reversed.
func (s *Service) RefusedLosses() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.refusedLoss))
	for sh, n := range s.refusedLoss {
		out[sh] = n
	}
	return out
}

// AdoptedFrom returns a copy of the handoff-provenance map (shard id ->
// donor) for the ledger endpoint's disposition section.
func (s *Service) AdoptedFrom() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.handoffFrom))
	for sh, from := range s.handoffFrom {
		out[sh] = from
	}
	return out
}

// Stats returns a snapshot of every counter the service keeps.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Merged:             s.merged,
		MergeFailed:        s.mergeFail,
		OverloadRejected:   s.rejected,
		OverloadDropped:    s.dropped,
		Duplicates:         s.dupes,
		SamplesLost:        s.lostSamp,
		LossReversed:       s.lostRev,
		Checkpoints:        s.ckptOK,
		CheckpointFailures: s.ckptFail,
		CheckpointShorted:  s.ckptShort,
		HandoffsIn:         s.handoffsIn,
		HandoffCaptured:    s.handoffCapt,
		AdoptedShards:      s.adopted,
	}
	s.mu.Unlock()
	st.Queue = s.q.Stats()
	st.Breaker = s.brk.Stats()
	st.Draining = s.draining.Load()
	st.Sealed = s.sealed.Load()
	st.HandedOff = s.handedOff.Load()
	st.WAL = s.WALHealth()
	// One lock-free counters snapshot (an atomic view load, no lock at
	// all) instead of three separate aggregate reads: stats polls never
	// contend with merges under flood.
	c := s.agg.CountersSnapshot()
	st.Samples = c.Samples
	st.Lost = c.Lost
	st.LossRate = c.LossRate
	st.Sketch = s.agg.SketchStats()
	return st
}

// replayRecord is the wal.Open apply callback: reconstruct one record's
// effect through the ledger's skip logic. It runs single-threaded
// during construction, before Start; mu is still taken so the shared
// apply helpers stay uniform. An undecodable-but-CRC-valid record is an
// encoder bug or format skew — recovery fails loudly rather than
// guessing at acknowledged data.
func (s *Service) replayRecord(pos wal.Pos, payload []byte) error {
	kind, sub, h, err := decodeWALRecord(payload)
	if err != nil {
		return err
	}
	switch kind {
	case walKindAdmit:
		s.replayAdmit(sub)
	case walKindHandoff:
		s.replayHandoff(pos, h)
	case walKindAdopt:
		s.replayAdopt(h)
	}
	return nil
}

// replayAdmit re-applies one admit record. Skip rules keep replay
// idempotent against the checkpoint and against duplicate records:
// an already-resolved shard is covered by the checkpoint image; a
// standing refusal is reversed exactly as a live accepted retry would
// reverse it, then the payload merges. A submission that was refused
// pre-crash therefore replays as a merge — its captured samples count
// once either way, as Samples instead of Lost.
func (s *Service) replayAdmit(sub Submission) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.applied[sub.Shard] {
		s.admitted[sub.Shard] = true
		return
	}
	s.admitted[sub.Shard] = true
	if n, wasRefused := s.refusedLoss[sub.Shard]; wasRefused {
		delete(s.refusedLoss, sub.Shard)
		s.lostSamp -= n
		s.lostRev += n
		s.agg.ReverseLoss(n)
	}
	if err := s.agg.Merge(sub.DB); err != nil {
		n := sub.Captured()
		s.agg.RecordLoss(n)
		s.mergeFail++
		s.lostSamp += n
	} else {
		s.merged++
	}
	s.applied[sub.Shard] = true
	s.replayedRecords++
}

// replayHandoff re-applies one handoff record unless its position is
// already in the checkpoint's applied-handoffs set. The content-key
// check covers the other crash window: a duplicate delivery whose FIRST
// copy is in the checkpoint but whose second copy's WAL record survived
// the barrier — the positions differ, the keys do not.
func (s *Service) replayHandoff(pos wal.Pos, h Handoff) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.appliedHandoffs[pos.String()] {
		return
	}
	if h.Key != "" {
		if _, seen := s.handoffSeen[h.Key]; seen {
			s.appliedHandoffs[pos.String()] = true
			return
		}
	}
	captured := h.DB.Samples() + h.DB.Lost()
	_ = s.applyHandoffLocked(h, captured) // merge failure is accounted inside
	s.appliedHandoffs[pos.String()] = true
	s.replayedRecords++
}

// replayAdopt re-applies one ledger-adoption record. Naturally
// idempotent: an already-admitted shard keeps its standing entry, so a
// record that raced the checkpoint barrier replays to the same state.
func (s *Service) replayAdopt(h Handoff) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range h.Shards {
		if !s.admitted[sh] {
			s.admitted[sh] = true
			s.handoffFrom[sh] = h.From
			s.adopted++
		}
	}
	s.replayedRecords++
}

// WALHealth snapshots the WAL's health section, nil when disabled.
func (s *Service) WALHealth() *WALHealth {
	if s.wal == nil {
		return nil
	}
	st := s.wal.Stats()
	s.mu.Lock()
	pending := len(s.pending)
	s.mu.Unlock()
	return &WALHealth{
		Segments:           st.Segments,
		SegmentSeq:         st.SegmentSeq,
		AppendedBytes:      st.AppendedBytes,
		BytesSinceBarrier:  st.BytesSinceBarrier,
		Appends:            st.Appends,
		Syncs:              st.Syncs,
		SyncErrors:         st.SyncErrors,
		Rotations:          st.Rotations,
		LastSyncAgeMS:      st.LastSyncAge.Milliseconds(),
		OldestPendingAgeMS: st.OldestPendingAge.Milliseconds(),
		PendingRecords:     pending,
		ReplayRecords:      s.walReplay.Records,
		ReplayDurationMS:   s.walReplay.Duration.Milliseconds(),
		Stalled:            st.OldestPendingAge > s.cfg.WALStallAfter,
		Wedged:             st.Wedged,
	}
}

// WALStalled reports whether the WAL's oldest unsynced record has aged
// past Config.WALStallAfter — the readiness probe's degrade signal.
// Always false with the WAL disabled.
func (s *Service) WALStalled() bool {
	if s.wal == nil {
		return false
	}
	return s.wal.Stats().OldestPendingAge > s.cfg.WALStallAfter
}

// WALWedged reports whether the WAL has wedged on a write or fsync
// failure: every submission answers ErrWAL until this process restarts
// and replays. Readiness must degrade the instance so the router steers
// submissions to its ring successors. Always false with the WAL
// disabled.
func (s *Service) WALWedged() bool {
	if s.wal == nil {
		return false
	}
	return s.wal.Stats().Wedged
}

// CloseWAL syncs and closes the write-ahead log (no-op when disabled).
// Call after Drain: a closed WAL refuses further appends.
func (s *Service) CloseWAL() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// QuarantineWALDir closes the WAL and renames its directory aside with
// the given suffix (e.g. ".handedoff"). After a successful drain
// handoff the migrated samples live at the successor; a restart that
// replayed this WAL would double-count them, so the whole log is set
// aside exactly like the checkpoint.
func (s *Service) QuarantineWALDir(suffix string) error {
	if s.wal == nil {
		return nil
	}
	dir := s.wal.Dir()
	if err := s.wal.Close(); err != nil {
		return err
	}
	return os.Rename(dir, dir+suffix)
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	fmt.Fprintf(s.cfg.Log, "ingest: "+format+"\n", args...)
}
