package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"profileme/internal/profile"
)

// Typed admission failures. The HTTP layer maps each to a status code;
// the remote-submit sink maps the statuses back to its retry taxonomy.
var (
	// ErrQueueFull: the bounded queue refused the submission (RejectNew
	// policy). Transient — back off and retry (HTTP 429).
	ErrQueueFull = errors.New("ingest: queue full")
	// ErrDraining: the service is shutting down and no longer admits
	// work. Transient — retry against a healthy replica (HTTP 503).
	ErrDraining = errors.New("ingest: draining, not accepting submissions")
	// ErrConfigMismatch: the shard's sampling configuration cannot merge
	// into this aggregate. Permanent — retrying cannot help (HTTP 409).
	ErrConfigMismatch = errors.New("ingest: shard sampling configuration does not match aggregate")
)

// Config parameterizes a Service. Zero values get usable defaults.
type Config struct {
	// QueueDepth bounds the ingest queue (default 64).
	QueueDepth int
	// Policy is the queue overflow policy (default RejectNew).
	Policy Policy
	// Interval/Window/Width define the aggregate's sampling configuration
	// when starting empty (defaults 512 / 0 / 4); ignored when a seed
	// database is supplied. Submissions must match or are refused with
	// ErrConfigMismatch.
	Interval float64
	Window   int
	Width    int
	// CheckpointPath enables circuit-broken atomic persistence of the
	// aggregate ("" = in-memory only).
	CheckpointPath string
	// CheckpointEvery checkpoints after this many merged submissions
	// (default 1: every merge, like the fleet supervisor).
	CheckpointEvery int
	// BreakerThreshold consecutive checkpoint failures open the breaker
	// (default 3); BreakerCooldown is the open period before a half-open
	// probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Log receives progress and degradation lines (nil = silent).
	Log io.Writer

	persist   func() error     // test seam; nil = WriteAtomic of the aggregate
	mergeHook func(Submission) // test seam; called before each merge
}

func (c *Config) normalize() error {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Interval == 0 {
		c.Interval = 512
	}
	if c.Width == 0 {
		c.Width = 4
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	switch {
	case c.QueueDepth < 1:
		return fmt.Errorf("ingest: queue depth %d", c.QueueDepth)
	case c.Interval < 1:
		return fmt.Errorf("ingest: interval %g < 1", c.Interval)
	case c.Window < 0:
		return fmt.Errorf("ingest: negative window %d", c.Window)
	case c.Width < 1:
		return fmt.Errorf("ingest: issue width %d", c.Width)
	case c.CheckpointEvery < 1:
		return fmt.Errorf("ingest: checkpoint every %d", c.CheckpointEvery)
	}
	return nil
}

// Stats is a full snapshot of the service's health counters — the
// /v1/stats payload.
type Stats struct {
	Queue   QueueStats   `json:"queue"`
	Breaker BreakerStats `json:"breaker"`

	Merged      uint64 `json:"merged"`       // submissions folded into the aggregate
	MergeFailed uint64 `json:"merge_failed"` // accepted but unmergeable (accounted as loss)

	OverloadRejected uint64 `json:"overload_rejected"` // refused at admission (429/503)
	OverloadDropped  uint64 `json:"overload_dropped"`  // evicted by DropOldest
	SamplesLost      uint64 `json:"samples_lost"`      // captured samples lost to overload/drain

	Checkpoints        uint64 `json:"checkpoints"`
	CheckpointFailures uint64 `json:"checkpoint_failures"`
	CheckpointShorted  uint64 `json:"checkpoint_short_circuited"`

	Draining bool `json:"draining"`

	// Aggregate rollup.
	Samples  uint64  `json:"samples"`
	Lost     uint64  `json:"lost"`
	LossRate float64 `json:"loss_rate"`
}

// Service owns the ingest pipeline: HTTP handlers Submit, one aggregator
// goroutine merges, the breaker guards persistence, Drain flushes and
// writes the final checkpoint. The aggregate lives behind a
// profile.SafeDB, so queries run concurrently with ingest.
type Service struct {
	cfg Config
	agg *profile.SafeDB
	q   *Queue
	brk *Breaker

	wantS        float64
	wantW, wantC int
	wantTNear    int64

	draining atomic.Bool
	started  atomic.Bool
	done     chan struct{}

	mu        sync.Mutex
	merged    uint64
	mergeFail uint64
	rejected  uint64
	dropped   uint64
	lostSamp  uint64
	ckptOK    uint64
	ckptFail  uint64
	ckptShort uint64
	sinceCkpt int
}

// NewService builds a service. seed, when non-nil, becomes the aggregate
// (e.g. a checkpoint reloaded at startup) and defines the sampling
// configuration; otherwise an empty aggregate is built from cfg.
func NewService(cfg Config, seed *profile.DB) (*Service, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	q, err := NewQueue(cfg.QueueDepth, cfg.Policy)
	if err != nil {
		return nil, err
	}
	if seed == nil {
		seed = profile.NewDB(cfg.Interval, cfg.Window, cfg.Width)
	}
	s := &Service{
		cfg:  cfg,
		agg:  profile.NewSafeDB(seed),
		q:    q,
		brk:  NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		done: make(chan struct{}),
	}
	s.wantS, s.wantW, s.wantC, s.wantTNear = s.agg.SamplingConfig()
	if s.cfg.persist == nil {
		s.cfg.persist = func() error {
			return profile.WriteAtomic(s.cfg.CheckpointPath, s.agg.Save)
		}
	}
	return s, nil
}

// Aggregate returns the shared aggregate database.
func (s *Service) Aggregate() *profile.SafeDB { return s.agg }

// Breaker returns the persistence circuit breaker (readiness probes
// inspect its state).
func (s *Service) Breaker() *Breaker { return s.brk }

// QueueDepth returns the current backlog (load-shedding input).
func (s *Service) QueueDepth() int { return s.q.Len() }

// Draining reports whether a drain has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// Start launches the aggregator goroutine.
func (s *Service) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go s.run()
}

// Submit admits one decoded submission into the queue. On refusal the
// shard's captured samples are recorded as aggregate loss — overload
// degrades the estimates' precision, never their centring — and a typed
// error says why. A config-mismatched shard is refused WITHOUT loss
// accounting: its samples were never part of this aggregate's population.
func (s *Service) Submit(sub Submission) error {
	if s.draining.Load() {
		s.accountLoss(sub, &s.rejected)
		return ErrDraining
	}
	if err := s.compatible(sub.DB); err != nil {
		return err
	}
	dropped, ok := s.q.Offer(sub)
	for _, d := range dropped {
		s.accountLoss(d, &s.dropped)
		s.logf("overflow: dropped oldest shard %s (%d captured samples accounted as loss)", d.Shard, d.Captured())
	}
	if !ok {
		s.accountLoss(sub, &s.rejected)
		return ErrQueueFull
	}
	return nil
}

// compatible refuses shards that DB.Merge would refuse, before they
// occupy queue space.
func (s *Service) compatible(db *profile.DB) error {
	if db.S != s.wantS || db.W != s.wantW || db.C != s.wantC || db.TNear != s.wantTNear {
		return fmt.Errorf("%w: shard (S=%g W=%d C=%d TNear=%d) vs aggregate (S=%g W=%d C=%d TNear=%d)",
			ErrConfigMismatch, db.S, db.W, db.C, db.TNear, s.wantS, s.wantW, s.wantC, s.wantTNear)
	}
	return nil
}

// accountLoss records a never-merged submission's captured samples as
// aggregate loss and bumps the given refusal counter.
func (s *Service) accountLoss(sub Submission, counter *uint64) {
	n := sub.Captured()
	s.agg.RecordLoss(n)
	s.mu.Lock()
	*counter++
	s.lostSamp += n
	s.mu.Unlock()
}

// run is the aggregator loop: single consumer, so the merge path itself
// needs no locking beyond SafeDB's.
func (s *Service) run() {
	defer close(s.done)
	for {
		sub, ok := s.q.Wait()
		if !ok {
			return
		}
		s.merge(sub)
	}
}

// merge folds one submission into the aggregate and checkpoints through
// the breaker on the configured cadence.
func (s *Service) merge(sub Submission) {
	if s.cfg.mergeHook != nil {
		s.cfg.mergeHook(sub)
	}
	if err := s.agg.Merge(sub.DB); err != nil {
		// Admission screens configurations, so this is rare (e.g. metric
		// registration skew) — but it still must be accounted, not lost.
		s.accountLoss(sub, &s.mergeFail)
		s.logf("merge failed for shard %s: %v (accounted as loss)", sub.Shard, err)
		return
	}
	s.mu.Lock()
	s.merged++
	s.sinceCkpt++
	due := s.cfg.CheckpointPath != "" && s.sinceCkpt >= s.cfg.CheckpointEvery
	s.mu.Unlock()
	if due {
		s.checkpoint()
	}
}

// checkpoint persists the aggregate through the circuit breaker: an open
// breaker skips the write (counted, retried next cadence) instead of
// stalling ingest on a dead disk.
func (s *Service) checkpoint() {
	err := s.brk.Do(s.cfg.persist)
	s.mu.Lock()
	switch {
	case errors.Is(err, ErrBreakerOpen):
		s.ckptShort++
	case err != nil:
		s.ckptFail++
	default:
		s.ckptOK++
		s.sinceCkpt = 0
	}
	s.mu.Unlock()
	if err != nil && !errors.Is(err, ErrBreakerOpen) {
		s.logf("checkpoint failed: %v", err)
	}
}

// BeginDrain stops admission (Submit starts refusing with ErrDraining)
// without waiting for the backlog. The HTTP layer calls this the moment
// SIGTERM arrives so readiness flips immediately.
func (s *Service) BeginDrain() {
	s.draining.Store(true)
}

// Drain completes the graceful-shutdown sequence: stop admission, flush
// the queued backlog through the aggregator, then write the final
// checkpoint — bypassing the breaker, because this is the last chance to
// persist and a stale open state must not discard the run. Returns when
// the aggregate is fully merged and durable (or ctx expires).
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	s.q.Close()
	if s.started.Load() {
		select {
		case <-s.done:
		case <-ctx.Done():
			return fmt.Errorf("ingest: drain: %w", context.Cause(ctx))
		}
	} else {
		// Never started: flush the backlog inline.
		for {
			sub, ok := s.q.Wait()
			if !ok {
				break
			}
			s.merge(sub)
		}
	}
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	if err := s.cfg.persist(); err != nil {
		return fmt.Errorf("ingest: final checkpoint: %w", err)
	}
	s.mu.Lock()
	s.ckptOK++
	s.mu.Unlock()
	s.logf("drained: %d samples aggregated, %d lost (%.1f%% loss), final checkpoint at %s",
		s.agg.Samples(), s.agg.Lost(), 100*s.agg.LossRate(), s.cfg.CheckpointPath)
	return nil
}

// Stats returns a snapshot of every counter the service keeps.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Merged:             s.merged,
		MergeFailed:        s.mergeFail,
		OverloadRejected:   s.rejected,
		OverloadDropped:    s.dropped,
		SamplesLost:        s.lostSamp,
		Checkpoints:        s.ckptOK,
		CheckpointFailures: s.ckptFail,
		CheckpointShorted:  s.ckptShort,
	}
	s.mu.Unlock()
	st.Queue = s.q.Stats()
	st.Breaker = s.brk.Stats()
	st.Draining = s.draining.Load()
	st.Samples = s.agg.Samples()
	st.Lost = s.agg.Lost()
	st.LossRate = s.agg.LossRate()
	return st
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	fmt.Fprintf(s.cfg.Log, "ingest: "+format+"\n", args...)
}
