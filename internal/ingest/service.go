package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"profileme/internal/profile"
)

// Typed admission failures. The HTTP layer maps each to a status code;
// the remote-submit sink maps the statuses back to its retry taxonomy.
var (
	// ErrQueueFull: the bounded queue refused the submission (RejectNew
	// policy). Transient — back off and retry (HTTP 429).
	ErrQueueFull = errors.New("ingest: queue full")
	// ErrDraining: the service is shutting down and no longer admits
	// work. Transient — retry against a healthy replica (HTTP 503).
	ErrDraining = errors.New("ingest: draining, not accepting submissions")
	// ErrConfigMismatch: the shard's sampling configuration cannot merge
	// into this aggregate. Permanent — retrying cannot help (HTTP 409).
	ErrConfigMismatch = errors.New("ingest: shard sampling configuration does not match aggregate")
	// ErrDuplicate: a shard with this id is already queued or merged.
	// The submission is acknowledged without re-merging (HTTP 202 with a
	// duplicate marker), so a client retrying after a lost response
	// cannot double-count its samples.
	ErrDuplicate = errors.New("ingest: duplicate shard submission")
	// ErrHandedOff: this instance already shipped its aggregate to its
	// ring successor; accepting anything afterwards would strand samples
	// outside the fleet-wide conservation sum.
	ErrHandedOff = errors.New("ingest: aggregate already handed off")
)

// Config parameterizes a Service. Zero values get usable defaults.
type Config struct {
	// QueueDepth bounds the ingest queue (default 64).
	QueueDepth int
	// Policy is the queue overflow policy (default RejectNew).
	Policy Policy
	// Interval/Window/Width define the aggregate's sampling configuration
	// when starting empty (defaults 512 / 0 / 4); ignored when a seed
	// database is supplied. Submissions must match or are refused with
	// ErrConfigMismatch.
	Interval float64
	Window   int
	Width    int
	// CheckpointPath enables circuit-broken atomic persistence of the
	// aggregate ("" = in-memory only).
	CheckpointPath string
	// CheckpointEvery checkpoints after this many merged submissions
	// (default 1: every merge, like the fleet supervisor).
	CheckpointEvery int
	// BreakerThreshold consecutive checkpoint failures open the breaker
	// (default 3); BreakerCooldown is the open period before a half-open
	// probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Log receives progress and degradation lines (nil = silent).
	Log io.Writer

	persist   func() error     // test seam; nil = WriteAtomic of the aggregate
	mergeHook func(Submission) // test seam; called before each merge
}

func (c *Config) normalize() error {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Interval == 0 {
		c.Interval = 512
	}
	if c.Width == 0 {
		c.Width = 4
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	switch {
	case c.QueueDepth < 1:
		return fmt.Errorf("ingest: queue depth %d", c.QueueDepth)
	case c.Interval < 1:
		return fmt.Errorf("ingest: interval %g < 1", c.Interval)
	case c.Window < 0:
		return fmt.Errorf("ingest: negative window %d", c.Window)
	case c.Width < 1:
		return fmt.Errorf("ingest: issue width %d", c.Width)
	case c.CheckpointEvery < 1:
		return fmt.Errorf("ingest: checkpoint every %d", c.CheckpointEvery)
	}
	return nil
}

// Stats is a full snapshot of the service's health counters — the
// /v1/stats payload.
type Stats struct {
	Queue   QueueStats   `json:"queue"`
	Breaker BreakerStats `json:"breaker"`

	Merged      uint64 `json:"merged"`       // submissions folded into the aggregate
	MergeFailed uint64 `json:"merge_failed"` // accepted but unmergeable (accounted as loss)

	OverloadRejected uint64 `json:"overload_rejected"`     // refusal responses (429/503), retries included
	OverloadDropped  uint64 `json:"overload_dropped"`      // evicted by DropOldest
	Duplicates       uint64 `json:"duplicate_submissions"` // resubmissions of admitted shards (deduped)

	// SamplesLost mirrors the aggregate's overload/drain loss ledger: it
	// counts each refused shard's captured samples once, no matter how
	// many times the shard was refused, and goes back DOWN when a refused
	// shard is later accepted on retry (the loss is reversed).
	SamplesLost uint64 `json:"samples_lost"`
	// LossReversed totals the reversals, so SamplesLost + LossReversed is
	// the high-water mark of loss ever recorded.
	LossReversed uint64 `json:"samples_loss_reversed"`

	Checkpoints        uint64 `json:"checkpoints"`
	CheckpointFailures uint64 `json:"checkpoint_failures"`
	CheckpointShorted  uint64 `json:"checkpoint_short_circuited"`

	// Handoff accounting: HandoffsIn counts donor aggregates merged into
	// this instance during peer drains, HandoffCaptured their total
	// captured samples (delivered + lost) — the amount of fleet-wide
	// accounting that migrated here. HandedOff flips when THIS instance
	// shipped its aggregate away.
	HandoffsIn      uint64 `json:"handoffs_in"`
	HandoffCaptured uint64 `json:"handoff_captured"`
	HandedOff       bool   `json:"handed_off"`

	Draining bool `json:"draining"`

	// Aggregate rollup.
	Samples  uint64  `json:"samples"`
	Lost     uint64  `json:"lost"`
	LossRate float64 `json:"loss_rate"`
}

// Service owns the ingest pipeline: HTTP handlers Submit, one aggregator
// goroutine merges, the breaker guards persistence, Drain flushes and
// writes the final checkpoint. The aggregate lives behind a
// profile.SafeDB, so queries run concurrently with ingest.
type Service struct {
	cfg Config
	agg *profile.SafeDB
	q   *Queue
	brk *Breaker

	wantS        float64
	wantW, wantC int
	wantTNear    int64

	draining  atomic.Bool
	started   atomic.Bool
	handedOff atomic.Bool
	done      chan struct{}

	mu          sync.Mutex
	merged      uint64
	mergeFail   uint64
	rejected    uint64
	dropped     uint64
	dupes       uint64
	lostSamp    uint64
	lostRev     uint64
	ckptOK      uint64
	ckptFail    uint64
	ckptShort   uint64
	handoffsIn  uint64
	handoffCapt uint64
	sinceCkpt   int

	// Shard admission ledger (guarded by mu). admitted holds shard ids
	// that are queued or merged — a resubmission dedupes to ErrDuplicate
	// instead of merging twice (a lost 202 makes honest clients retry
	// delivered shards). refusedLoss maps shard ids whose captured
	// samples sit in the aggregate's loss ledger (429/503 refusals,
	// DropOldest evictions) to the exact count recorded, so a repeat
	// refusal accounts nothing new and an accepted retry reverses
	// precisely what was recorded. Memory grows with distinct shard ids,
	// which a campaign bounds by benchmarks × shards.
	admitted    map[string]bool
	refusedLoss map[string]uint64
	// handoffFrom records ledger provenance: shard ids admitted here not
	// by direct submission but because a draining peer handed its ledger
	// over — the reason a retry of a donor-merged shard dedupes at the
	// successor instead of double-merging across a drain failover.
	handoffFrom map[string]string
}

// NewService builds a service. seed, when non-nil, becomes the aggregate
// (e.g. a checkpoint reloaded at startup) and defines the sampling
// configuration; otherwise an empty aggregate is built from cfg.
func NewService(cfg Config, seed *profile.DB) (*Service, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	q, err := NewQueue(cfg.QueueDepth, cfg.Policy)
	if err != nil {
		return nil, err
	}
	if seed == nil {
		seed = profile.NewDB(cfg.Interval, cfg.Window, cfg.Width)
	}
	s := &Service{
		cfg:         cfg,
		agg:         profile.NewSafeDB(seed),
		q:           q,
		brk:         NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		done:        make(chan struct{}),
		admitted:    make(map[string]bool),
		refusedLoss: make(map[string]uint64),
		handoffFrom: make(map[string]string),
	}
	s.wantS, s.wantW, s.wantC, s.wantTNear = s.agg.SamplingConfig()
	if s.cfg.persist == nil {
		s.cfg.persist = func() error {
			return profile.WriteAtomic(s.cfg.CheckpointPath, s.agg.Save)
		}
	}
	return s, nil
}

// Aggregate returns the shared aggregate database.
func (s *Service) Aggregate() *profile.SafeDB { return s.agg }

// Breaker returns the persistence circuit breaker (readiness probes
// inspect its state).
func (s *Service) Breaker() *Breaker { return s.brk }

// QueueDepth returns the current backlog (load-shedding input).
func (s *Service) QueueDepth() int { return s.q.Len() }

// Draining reports whether a drain has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// Start launches the aggregator goroutine.
func (s *Service) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go s.run()
}

// Submit admits one decoded submission into the queue. On refusal the
// shard's captured samples are recorded as aggregate loss — overload
// degrades the estimates' precision, never their centring — and a typed
// error says why. The admission ledger keeps the accounting exact under
// the client's retry taxonomy (429/503 are transient, transport
// failures retried):
//
//   - a shard already queued or merged dedupes to ErrDuplicate, never
//     merging or accounting twice, even mid-drain;
//   - a shard refused more than once is loss-accounted exactly once;
//   - a previously refused shard that is now accepted has its recorded
//     loss reversed before it merges.
//
// A config-mismatched shard is refused WITHOUT loss accounting —
// checked before everything else, draining included: its samples were
// never part of this aggregate's population.
func (s *Service) Submit(sub Submission) error {
	if err := s.compatible(sub.DB); err != nil {
		return err
	}
	// Reserve the shard id before touching the queue so two racing
	// submissions of the same shard cannot both merge; the reservation is
	// released again on refusal.
	s.mu.Lock()
	if s.admitted[sub.Shard] {
		s.dupes++
		s.mu.Unlock()
		return ErrDuplicate
	}
	s.admitted[sub.Shard] = true
	s.mu.Unlock()
	if s.draining.Load() {
		s.refuse(sub, &s.rejected)
		return ErrDraining
	}
	dropped, res := s.q.Offer(sub)
	for _, d := range dropped {
		s.refuse(d, &s.dropped)
		s.logf("overflow: dropped oldest shard %s (%d captured samples accounted as loss)", d.Shard, d.Captured())
	}
	switch res {
	case OfferClosed:
		// BeginDrain raced with this Submit: same contract as draining —
		// 503, not 429, so the client goes elsewhere instead of retrying
		// a shutting-down instance.
		s.refuse(sub, &s.rejected)
		return ErrDraining
	case OfferFull:
		s.refuse(sub, &s.rejected)
		return ErrQueueFull
	}
	// Accepted: if an earlier refusal of this shard was accounted as
	// loss, the samples are back in the pipeline — reverse the ledger.
	s.mu.Lock()
	reversed, wasRefused := s.refusedLoss[sub.Shard]
	if wasRefused {
		delete(s.refusedLoss, sub.Shard)
		s.lostSamp -= reversed
		s.lostRev += reversed
	}
	s.mu.Unlock()
	if wasRefused {
		s.agg.ReverseLoss(reversed)
		s.logf("shard %s accepted on retry: %d previously accounted samples reversed out of the loss ledger", sub.Shard, reversed)
	}
	return nil
}

// compatible refuses shards that DB.Merge would refuse, before they
// occupy queue space.
func (s *Service) compatible(db *profile.DB) error {
	if db.S != s.wantS || db.W != s.wantW || db.C != s.wantC || db.TNear != s.wantTNear {
		return fmt.Errorf("%w: shard (S=%g W=%d C=%d TNear=%d) vs aggregate (S=%g W=%d C=%d TNear=%d)",
			ErrConfigMismatch, db.S, db.W, db.C, db.TNear, s.wantS, s.wantW, s.wantC, s.wantTNear)
	}
	return nil
}

// refuse backs a shard out of admission (refused at the door or evicted
// by DropOldest): the reservation is released, the refusal counter
// bumped, and — only the first time this shard id is refused — its
// captured samples recorded as aggregate loss under its ledger entry.
func (s *Service) refuse(sub Submission, counter *uint64) {
	n := sub.Captured()
	s.mu.Lock()
	delete(s.admitted, sub.Shard)
	*counter++
	_, seen := s.refusedLoss[sub.Shard]
	if !seen {
		s.refusedLoss[sub.Shard] = n
		s.lostSamp += n
	}
	s.mu.Unlock()
	if !seen {
		s.agg.RecordLoss(n)
	}
}

// accountMergeLoss records an admitted-but-unmergeable submission's
// captured samples as aggregate loss. The shard stays in the admitted
// set — the failure is permanent (configuration skew), so a retry must
// dedupe, not re-merge.
func (s *Service) accountMergeLoss(sub Submission) {
	n := sub.Captured()
	s.agg.RecordLoss(n)
	s.mu.Lock()
	s.mergeFail++
	s.lostSamp += n
	s.mu.Unlock()
}

// run is the aggregator loop: single consumer, so the merge path itself
// needs no locking beyond SafeDB's.
func (s *Service) run() {
	defer close(s.done)
	for {
		sub, ok := s.q.Wait()
		if !ok {
			return
		}
		s.merge(sub)
	}
}

// merge folds one submission into the aggregate and checkpoints through
// the breaker on the configured cadence.
func (s *Service) merge(sub Submission) {
	if s.cfg.mergeHook != nil {
		s.cfg.mergeHook(sub)
	}
	if err := s.agg.Merge(sub.DB); err != nil {
		// Admission screens configurations, so this is rare (e.g. metric
		// registration skew) — but it still must be accounted, not lost.
		s.accountMergeLoss(sub)
		s.logf("merge failed for shard %s: %v (accounted as loss)", sub.Shard, err)
		return
	}
	s.mu.Lock()
	s.merged++
	s.sinceCkpt++
	due := s.cfg.CheckpointPath != "" && s.sinceCkpt >= s.cfg.CheckpointEvery
	s.mu.Unlock()
	if due {
		s.checkpoint()
	}
}

// checkpoint persists the aggregate through the circuit breaker: an open
// breaker skips the write (counted, retried next cadence) instead of
// stalling ingest on a dead disk.
func (s *Service) checkpoint() {
	err := s.brk.Do(s.cfg.persist)
	s.mu.Lock()
	switch {
	case errors.Is(err, ErrBreakerOpen):
		s.ckptShort++
	case err != nil:
		s.ckptFail++
	default:
		s.ckptOK++
		s.sinceCkpt = 0
	}
	s.mu.Unlock()
	if err != nil && !errors.Is(err, ErrBreakerOpen) {
		s.logf("checkpoint failed: %v", err)
	}
}

// BeginDrain stops admission (Submit starts refusing with ErrDraining)
// without waiting for the backlog. The HTTP layer calls this the moment
// SIGTERM arrives so readiness flips immediately.
func (s *Service) BeginDrain() {
	s.draining.Store(true)
}

// Flush is the first half of the graceful-shutdown sequence: stop
// admission and run the queued backlog through the aggregator, without
// persisting. It exists as its own step because a clustered drain must
// interpose between flush and final checkpoint: the fully-merged
// aggregate is handed to the ring successor, and only if that fails is
// the local FinalCheckpoint the fallback durability path.
func (s *Service) Flush(ctx context.Context) error {
	s.BeginDrain()
	s.q.Close()
	if s.started.Load() {
		select {
		case <-s.done:
		case <-ctx.Done():
			return fmt.Errorf("ingest: drain: %w", context.Cause(ctx))
		}
	} else {
		// Never started: flush the backlog inline.
		for {
			sub, ok := s.q.Wait()
			if !ok {
				break
			}
			s.merge(sub)
		}
	}
	return nil
}

// FinalCheckpoint writes the last persist of a drain, bypassing the
// breaker: at shutdown durability outranks availability and a stale
// open state must not discard the run. No-op without a checkpoint path.
func (s *Service) FinalCheckpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	if err := s.cfg.persist(); err != nil {
		return fmt.Errorf("ingest: final checkpoint: %w", err)
	}
	s.mu.Lock()
	s.ckptOK++
	s.mu.Unlock()
	return nil
}

// Drain completes the graceful-shutdown sequence: stop admission, flush
// the queued backlog through the aggregator, then write the final
// checkpoint. Returns when the aggregate is fully merged and durable
// (or ctx expires).
func (s *Service) Drain(ctx context.Context) error {
	if err := s.Flush(ctx); err != nil {
		return err
	}
	if err := s.FinalCheckpoint(); err != nil {
		return err
	}
	if s.cfg.CheckpointPath != "" {
		s.logf("drained: %d samples aggregated, %d lost (%.1f%% loss), final checkpoint at %s",
			s.agg.Samples(), s.agg.Lost(), 100*s.agg.LossRate(), s.cfg.CheckpointPath)
	}
	return nil
}

// AcceptHandoff merges a draining peer's aggregate and admission ledger
// into this instance — the tier's zero-loss rolling-restart path. The
// donor's shard ids join the admitted ledger (with provenance) BEFORE
// the merge, so a client retry racing the handoff dedupes instead of
// double-merging; the donor's loss ledger rides inside its DB, keeping
// the fleet-wide conservation sum intact. Returns the captured total
// (delivered + lost) that migrated. A draining or already-handed-off
// receiver refuses: the donor must walk to the next ring successor.
func (s *Service) AcceptHandoff(h Handoff) (captured uint64, err error) {
	if s.handedOff.Load() {
		return 0, ErrHandedOff
	}
	if s.draining.Load() {
		return 0, ErrDraining
	}
	if err := s.compatible(h.DB); err != nil {
		return 0, err
	}
	captured = h.DB.Samples() + h.DB.Lost()
	s.mu.Lock()
	for _, sh := range h.Shards {
		if !s.admitted[sh] {
			s.admitted[sh] = true
			s.handoffFrom[sh] = h.From
		}
	}
	s.handoffsIn++
	s.handoffCapt += captured
	s.mu.Unlock()
	if err := s.agg.Merge(h.DB); err != nil {
		// Past the config screen a merge failure is metric-set skew:
		// conserve by accounting the donor's whole captured population as
		// loss rather than silently dropping it from the fleet sum.
		s.agg.RecordLoss(captured)
		s.mu.Lock()
		s.mergeFail++
		s.lostSamp += captured
		s.mu.Unlock()
		return 0, fmt.Errorf("ingest: handoff from %s unmergeable (accounted as loss): %w", h.From, err)
	}
	s.logf("handoff from %s: %d captured samples (%d shards) merged", h.From, captured, len(h.Shards))
	s.mu.Lock()
	s.sinceCkpt++
	due := s.cfg.CheckpointPath != "" && s.sinceCkpt >= s.cfg.CheckpointEvery
	s.mu.Unlock()
	if due {
		s.checkpoint()
	}
	return captured, nil
}

// MarkHandedOff records that this instance's aggregate has been shipped
// to its ring successor; Stats report it and the daemon skips the final
// checkpoint (a restart from it would double-count the migrated
// samples).
func (s *Service) MarkHandedOff() { s.handedOff.Store(true) }

// HandedOff reports whether the aggregate has been handed off.
func (s *Service) HandedOff() bool { return s.handedOff.Load() }

// AdmittedShards returns the shard ids currently admitted (queued or
// merged), sorted — the ledger a drain handoff ships so the successor
// keeps deduping the donor's shards.
func (s *Service) AdmittedShards() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.admitted))
	for sh := range s.admitted {
		out = append(out, sh)
	}
	sort.Strings(out)
	return out
}

// HandoffProvenance reports which donor instance a shard id arrived
// from via drain handoff ("" when the shard was submitted directly or
// is unknown).
func (s *Service) HandoffProvenance(shard string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handoffFrom[shard]
}

// Stats returns a snapshot of every counter the service keeps.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Merged:             s.merged,
		MergeFailed:        s.mergeFail,
		OverloadRejected:   s.rejected,
		OverloadDropped:    s.dropped,
		Duplicates:         s.dupes,
		SamplesLost:        s.lostSamp,
		LossReversed:       s.lostRev,
		Checkpoints:        s.ckptOK,
		CheckpointFailures: s.ckptFail,
		CheckpointShorted:  s.ckptShort,
		HandoffsIn:         s.handoffsIn,
		HandoffCaptured:    s.handoffCapt,
	}
	s.mu.Unlock()
	st.Queue = s.q.Stats()
	st.Breaker = s.brk.Stats()
	st.Draining = s.draining.Load()
	st.HandedOff = s.handedOff.Load()
	// One counters snapshot (single RLock, no deep copy) instead of three
	// separate aggregate reads: stats polls must never contend with
	// merges under flood.
	c := s.agg.CountersSnapshot()
	st.Samples = c.Samples
	st.Lost = c.Lost
	st.LossRate = c.LossRate
	return st
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	fmt.Fprintf(s.cfg.Log, "ingest: "+format+"\n", args...)
}
