package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"profileme/internal/profile"
	"profileme/internal/wal"
)

// aggDigest returns the aggregate's canonical serialized bytes —
// profile.Save is deterministic (PCs sorted), so equal digests mean
// equal databases.
func aggDigest(t *testing.T, s *Service) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Aggregate().Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// conserve asserts the invariant over an explicit shard set:
// Σ captured(distinct shards) == Samples + Lost.
func conserve(t *testing.T, s *Service, want uint64, label string) {
	t.Helper()
	got := s.Aggregate().Samples() + s.Aggregate().Lost()
	if got != want {
		t.Fatalf("%s: conservation violated: samples %d + lost %d = %d, want %d",
			label, s.Aggregate().Samples(), s.Aggregate().Lost(), got, want)
	}
}

// TestRecoverWALOnly crashes an instance with its whole backlog still
// queued (aggregator never started — nothing merged, nothing
// checkpointed) and verifies recovery rebuilds every acknowledged
// submission from the WAL alone, with post-crash retries deduping.
func TestRecoverWALOnly(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{QueueDepth: 16, Interval: 16, WALDir: filepath.Join(dir, "wal")}
	s1, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	subs := make([]Submission, 5)
	for i := range subs {
		subs[i] = sub(fmt.Sprintf("shard-%d", i), uint64(i), 20+i)
		want += subs[i].Captured()
		if err := s1.Submit(subs[i]); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Crash: drop the in-memory state (queue included); only what the
	// WAL fsynced survives.
	if err := s1.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	s2, info, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseWAL()
	if info.CheckpointLoaded || info.Replayed != 5 {
		t.Fatalf("recovery info %+v, want 5 replayed and no checkpoint", info)
	}
	conserve(t, s2, want, "after recovery")
	if lost := s2.Aggregate().Lost(); lost != 0 {
		t.Fatalf("crash-attributed loss: %d lost samples after recovery", lost)
	}
	// The 202s promised these shards are in: retries must dedupe.
	for i := range subs {
		resub := Submission{Shard: subs[i].Shard, DB: testShard(uint64(i), 20+i)}
		if err := s2.Submit(resub); !errors.Is(err, ErrDuplicate) {
			t.Fatalf("post-crash retry of shard-%d: err=%v, want ErrDuplicate", i, err)
		}
	}
	conserve(t, s2, want, "after post-crash retries")
}

// TestRecoverCheckpointPlusTail checkpoints part of the stream, crashes
// with the rest queued, and verifies replay skips what the checkpoint
// covers and re-applies only the tail — no double count, no loss.
func TestRecoverCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	var once sync.Once
	mergedSoFar := 0
	cfg := Config{
		QueueDepth:     16,
		Interval:       16,
		WALDir:         filepath.Join(dir, "wal"),
		CheckpointPath: filepath.Join(dir, "ckpt.db"),
		mergeHook: func(Submission) {
			if mergedSoFar >= 3 {
				once.Do(func() { close(gate) })
				select {} // aggregator wedged: simulates the crash point
			}
			mergedSoFar++
		},
	}
	s1, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	var want uint64
	for i := 0; i < 6; i++ {
		sb := sub(fmt.Sprintf("shard-%d", i), uint64(i), 15+i)
		want += sb.Captured()
		if err := s1.Submit(sb); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	<-gate // 3 merged and checkpointed; the rest queued
	if err := s1.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	s2, info, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseWAL()
	if !info.CheckpointLoaded {
		t.Fatalf("recovery info %+v: checkpoint not loaded", info)
	}
	if info.Replayed >= 6 {
		t.Fatalf("replayed %d records; checkpoint coverage not honored", info.Replayed)
	}
	conserve(t, s2, want, "checkpoint+tail recovery")
	if lost := s2.Aggregate().Lost(); lost != 0 {
		t.Fatalf("crash-attributed loss: %d", lost)
	}
	for i := 0; i < 6; i++ {
		resub := Submission{Shard: fmt.Sprintf("shard-%d", i), DB: testShard(uint64(i), 15+i)}
		if err := s2.Submit(resub); !errors.Is(err, ErrDuplicate) {
			t.Fatalf("retry of shard-%d: err=%v, want ErrDuplicate", i, err)
		}
	}
	conserve(t, s2, want, "after retries")
}

// TestRecoverRefusedShardReplaysAsMerge crashes with one shard refused
// (queue full, loss accounted). Replay merges the refused shard's
// durable payload instead — the captured samples count once, as Samples
// rather than Lost, and conservation holds exactly.
func TestRecoverRefusedShardReplaysAsMerge(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{QueueDepth: 1, Interval: 16, WALDir: filepath.Join(dir, "wal")}
	s1, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sub("shard-a", 1, 30), sub("shard-b", 2, 40)
	if err := s1.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := s1.Submit(b); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submit: err=%v, want ErrQueueFull", err)
	}
	// Pre-crash the refusal stands as loss.
	if got := s1.Aggregate().Lost(); got != b.Captured() {
		t.Fatalf("pre-crash lost %d, want %d", got, b.Captured())
	}
	if err := s1.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	s2, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseWAL()
	conserve(t, s2, a.Captured()+b.Captured(), "refused-shard recovery")
	if lost := s2.Aggregate().Lost(); lost != 0 {
		t.Fatalf("refused shard still accounted as loss (%d) though its payload was durable", lost)
	}
	if err := s2.Submit(Submission{Shard: "shard-b", DB: testShard(2, 40)}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("retry of recovered refused shard: err=%v, want ErrDuplicate", err)
	}
}

// TestRecoverHandoffRecord WALs a drain handoff, crashes, and verifies
// the recovered instance has the donor's samples and dedupes the
// donor's shards; a second recovery (after a checkpoint) must not
// double-apply the handoff.
func TestRecoverHandoffRecord(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		QueueDepth:     8,
		Interval:       16,
		WALDir:         filepath.Join(dir, "wal"),
		CheckpointPath: filepath.Join(dir, "ckpt.db"),
		// Far cadence: the handoff must recover from the WAL record, not
		// from an immediate checkpoint.
		CheckpointEvery: 100,
	}
	s1, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	donor := profile.NewDB(16, 0, 4)
	if err := donor.Merge(testShard(7, 25)); err != nil {
		t.Fatal(err)
	}
	donor.RecordLoss(5)
	captured := donor.Samples() + donor.Lost()
	h := Handoff{From: "collector-9", DB: donor, Shards: []string{"donor/s1", "donor/s2"}}
	if got, err := s1.AcceptHandoff(h); err != nil || got != captured {
		t.Fatalf("accept handoff: got %d err %v", got, err)
	}
	if err := s1.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	s2, info, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 1 {
		t.Fatalf("replayed %d, want the 1 handoff record", info.Replayed)
	}
	conserve(t, s2, captured, "handoff recovery")
	if err := s2.Submit(Submission{Shard: "donor/s1", DB: testShard(7, 10)}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("donor shard after recovery: err=%v, want ErrDuplicate", err)
	}
	if s2.HandoffProvenance("donor/s2") != "collector-9" {
		t.Fatal("handoff provenance lost through recovery")
	}
	digest := aggDigest(t, s2)
	// Checkpoint now covers the handoff; a further recovery must skip it.
	if err := s2.FinalCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	s3, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.CloseWAL()
	if !bytes.Equal(digest, aggDigest(t, s3)) {
		t.Fatal("handoff double-applied across checkpointed recovery")
	}
}

// TestReplayIdempotence recovers the same durable state twice and
// demands bit-identical aggregates: replay twice == replay once.
func TestReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{QueueDepth: 16, Interval: 16, WALDir: filepath.Join(dir, "wal")}
	s1, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := s1.Submit(sub(fmt.Sprintf("s-%d", i), uint64(i*13), 10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2 := aggDigest(t, s2)
	if err := s2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	s3, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.CloseWAL()
	if !bytes.Equal(d2, aggDigest(t, s3)) {
		t.Fatal("two recoveries from identical durable state diverged")
	}
}

// TestPrefixConservationProperty is the torn-write property test: for a
// WAL built from a randomized mix of accepts, refusals, and retries,
// EVERY prefix cut at a record boundary (a crash can land anywhere)
// must recover to a conservation-consistent state — Σ captured over the
// distinct shards whose records survive == Samples + Lost.
func TestPrefixConservationProperty(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	cfg := Config{QueueDepth: 2, Interval: 16, WALDir: walDir}
	s1, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 24; i++ {
		shard := fmt.Sprintf("p-%d", rng.Intn(8)) // collisions: duplicates and retries
		err := s1.Submit(Submission{Shard: shard, DB: testShard(uint64(i), 5+rng.Intn(20))})
		if err != nil && !errors.Is(err, ErrDuplicate) && !errors.Is(err, ErrQueueFull) {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := s1.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Collect record boundaries and per-record shard populations.
	type recMeta struct {
		end      int64
		shard    string
		captured uint64
	}
	var recs []recMeta
	if _, err := wal.Replay(walDir, func(pos wal.Pos, payload []byte) error {
		if pos.Seg != 1 {
			t.Fatalf("test assumes a single segment, record at %v", pos)
		}
		kind, sb, _, err := decodeWALRecord(payload)
		if err != nil || kind != walKindAdmit {
			t.Fatalf("unexpected record %q err %v", kind, err)
		}
		recs = append(recs, recMeta{shard: sb.Shard, captured: sb.Captured()})
		if len(recs) > 1 {
			recs[len(recs)-2].end = pos.Off
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) < 8 {
		t.Fatalf("only %d WAL records; want a meaty stream", len(recs))
	}
	segBytes, err := os.ReadFile(filepath.Join(walDir, "wal-0000000000000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	recs[len(recs)-1].end = int64(len(segBytes))

	for k := 0; k <= len(recs); k++ {
		cut := int64(16) // segment header only
		if k > 0 {
			cut = recs[k-1].end
		}
		pdir := filepath.Join(dir, fmt.Sprintf("prefix-%02d", k))
		if err := os.MkdirAll(pdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pdir, "wal-0000000000000001.log"), segBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		seen := map[string]bool{}
		for _, r := range recs[:k] {
			if !seen[r.shard] {
				seen[r.shard] = true
				want += r.captured
			}
		}
		pcfg := Config{QueueDepth: 2, Interval: 16, WALDir: pdir}
		s, info, err := Recover(pcfg)
		if err != nil {
			t.Fatalf("prefix %d: recover: %v", k, err)
		}
		if info.Replay.Records != k {
			t.Fatalf("prefix %d: replayed %d records", k, info.Replay.Records)
		}
		conserve(t, s, want, fmt.Sprintf("prefix %d", k))
		s.CloseWAL()
	}
}

// TestRecoverTornTail garbles the WAL tail (a crash mid-append) and
// verifies recovery conserves the intact prefix and keeps serving.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	cfg := Config{QueueDepth: 8, Interval: 16, WALDir: walDir}
	s1, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < 4; i++ {
		sb := sub(fmt.Sprintf("t-%d", i), uint64(i), 12)
		want += sb.Captured()
		if err := s1.Submit(sb); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(walDir, "wal-0000000000000001.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, info, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseWAL()
	if !info.Replay.Truncated || info.Replayed != 4 {
		t.Fatalf("recovery info %+v, want truncation with all 4 intact records applied", info)
	}
	conserve(t, s2, want, "torn tail")
	if err := s2.Submit(sub("t-new", 99, 7)); err != nil {
		t.Fatalf("submit after torn-tail repair: %v", err)
	}
}

// TestDuplicateWaitsForOriginalDurability pins the 202+duplicate
// contract: a resubmission of a shard whose ORIGINAL submission is
// still inside its group commit must not be acknowledged until that
// commit lands — and when the commit's fsync fails, the duplicate must
// fail too. Answering ErrDuplicate from the admitted[] reservation
// alone would hand the retrier a 202 for a shard durable nowhere.
func TestDuplicateWaitsForOriginalDurability(t *testing.T) {
	dir := t.TempDir()
	var armed atomic.Bool
	entered := make(chan struct{}) // fsync reached, original parked
	release := make(chan struct{}) // closing delivers the verdict
	injected := errors.New("injected fsync EIO")
	cfg := Config{
		QueueDepth: 8,
		Interval:   16,
		WALDir:     filepath.Join(dir, "wal"),
		walFsync: func(f *os.File) error {
			if !armed.Load() {
				return f.Sync() // segment-creation syncs during Open
			}
			entered <- struct{}{}
			<-release
			return injected
		},
	}
	s, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.CloseWAL()
	armed.Store(true)

	orig := make(chan error, 1)
	go func() { orig <- s.Submit(sub("dup-race", 1, 5)) }()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("original never reached fsync")
	}

	// Original is parked inside its commit. The duplicate must block on
	// the original's ticket, not answer from the reservation.
	dup := make(chan error, 1)
	go func() { dup <- s.Submit(sub("dup-race", 1, 5)) }()
	select {
	case err := <-dup:
		t.Fatalf("duplicate answered (%v) before the original's fsync returned", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release) // fsync fails: nobody gets a durability receipt
	for i, ch := range []chan error{orig, dup} {
		select {
		case err := <-ch:
			if !errors.Is(err, ErrWAL) {
				t.Fatalf("waiter %d: err=%v, want ErrWAL", i, err)
			}
			if errors.Is(err, ErrDuplicate) {
				t.Fatalf("waiter %d acknowledged a shard durable nowhere", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d never released", i)
		}
	}
	if !s.WALWedged() {
		t.Fatal("failed fsync did not surface as wedged in health")
	}
	if h := s.Stats().WAL; h == nil || !h.Wedged {
		t.Fatalf("stats WAL section %+v, want Wedged", h)
	}
}

// TestWALStallSignal wires a stalled fsync into the health section.
func TestWALStallSignal(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		QueueDepth:    8,
		Interval:      16,
		WALDir:        filepath.Join(dir, "wal"),
		FsyncWindow:   time.Hour, // syncer sleeps: staged records age
		WALStallAfter: 10 * time.Millisecond,
	}
	s, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.CloseWAL()
	if s.WALStalled() {
		t.Fatal("fresh WAL reported stalled")
	}
	done := make(chan error, 1)
	go func() { done <- s.Submit(sub("stall-1", 1, 5)) }()
	deadline := time.After(5 * time.Second)
	for !s.WALStalled() {
		select {
		case <-deadline:
			t.Fatal("WAL never reported stalled")
		case err := <-done:
			t.Fatalf("submit returned (%v) though fsync should be parked", err)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if h := s.Stats().WAL; h == nil || !h.Stalled {
		t.Fatalf("stats WAL section %+v, want Stalled", h)
	}
}
