package ingest

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

var errDisk = errors.New("disk on fire")

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	c := &fakeClock{t: time.Unix(1000, 0)}
	b.now = c.now
	return b, c
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	fail := func() error { return errDisk }

	for i := 0; i < 2; i++ {
		if err := b.Do(fail); !errors.Is(err, errDisk) {
			t.Fatalf("call %d: %v", i, err)
		}
		if st := b.State(); st != BreakerClosed {
			t.Fatalf("state after %d failures: %v", i+1, st)
		}
	}
	if err := b.Do(fail); !errors.Is(err, errDisk) {
		t.Fatal(err)
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after threshold: %v", st)
	}
	// Short-circuited while open: the dependency is not called.
	called := false
	err := b.Do(func() error { called = true; return nil })
	if !errors.Is(err, ErrBreakerOpen) || called {
		t.Fatalf("open breaker let a call through: err=%v called=%v", err, called)
	}
	st := b.Stats()
	if st.Trips != 1 || st.Failures != 3 || st.Shorted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	if err := b.Do(func() error { return errDisk }); !errors.Is(err, errDisk) {
		t.Fatal(err)
	}
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not open")
	}

	// Probe fails → re-open, cooldown restarts.
	clk.advance(time.Minute)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown: %v", b.State())
	}
	if err := b.Do(func() error { return errDisk }); !errors.Is(err, errDisk) {
		t.Fatal(err)
	}
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("re-opened breaker admitted a call: %v", err)
	}

	// Probe succeeds → closed, calls flow again.
	clk.advance(time.Minute)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("successful probe: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe: %v", b.State())
	}
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("closed breaker refused a call: %v", err)
	}
	st := b.Stats()
	if st.Trips != 2 || st.Successes != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBreakerSuccessResetsConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	seq := []error{errDisk, errDisk, nil, errDisk, errDisk}
	for i, e := range seq {
		err := b.Do(func() error { return e })
		if !errors.Is(err, e) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// 2 failures, success, 2 failures: never 3 consecutive, still closed.
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state %v after interleaved successes", st)
	}
}
