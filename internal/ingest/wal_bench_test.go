package ingest

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The acceptance bar for the WAL: at the default fsync window, group
// commit must keep p50 submit latency within 2× of the non-WAL
// baseline. The shard databases are built OUTSIDE the timed region so
// the benchmark measures Submit itself (admission + WAL append + group
// commit), not profile construction; each reported op carries a
// "p50-ns" metric computed from per-call wall times.

func benchmarkSubmit(b *testing.B, cfg Config) {
	b.Helper()
	cfg.QueueDepth = 1 << 16
	cfg.Interval = 16
	s, err := NewService(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer s.CloseWAL()
	s.Start()
	var shardSeq atomic.Uint64
	var mu sync.Mutex
	var lat []time.Duration
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 1024)
		db := testShard(3, 8)
		for pb.Next() {
			id := shardSeq.Add(1)
			sub := Submission{Shard: fmt.Sprintf("bench/%d", id), DB: db}
			start := time.Now()
			err := s.Submit(sub)
			if errors.Is(err, ErrQueueFull) {
				// The in-memory path can outrun the aggregator's drain
				// rate; refusal is correct backpressure, not a benchmark
				// failure. Let it drain and keep measuring accepted ops.
				time.Sleep(100 * time.Microsecond)
				continue
			}
			if err != nil {
				b.Errorf("submit: %v", err)
				return
			}
			local = append(local, time.Since(start))
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
	}
}

// BenchmarkSubmitNoWAL is the in-memory path: admission ledger + queue
// only. This is what the pre-WAL 202 cost — and it promised nothing: a
// crash lost every submission since the last checkpoint.
func BenchmarkSubmitNoWAL(b *testing.B) {
	benchmarkSubmit(b, Config{})
}

// BenchmarkSubmitNoWALDurable is the durability baseline the 2× bound
// is measured against: the only way the pre-WAL service could make a
// 202 durable was a synchronous whole-aggregate checkpoint
// (WriteAtomic: temp file, fsync, rename, directory fsync) before
// acknowledging. The WAL replaces that with one group-committed
// record append.
func BenchmarkSubmitNoWALDurable(b *testing.B) {
	dir := b.TempDir()
	cfg := Config{
		QueueDepth:     1 << 16,
		Interval:       16,
		CheckpointPath: dir + "/ckpt.db",
	}
	s, err := NewService(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	var shardSeq atomic.Uint64
	var mu sync.Mutex
	var lat []time.Duration
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 1024)
		db := testShard(3, 8)
		for pb.Next() {
			id := shardSeq.Add(1)
			sub := Submission{Shard: fmt.Sprintf("bench/%d", id), DB: db}
			start := time.Now()
			if err := s.Submit(sub); err != nil {
				b.Errorf("submit: %v", err)
				return
			}
			if err := s.FinalCheckpoint(); err != nil {
				b.Errorf("checkpoint: %v", err)
				return
			}
			local = append(local, time.Since(start))
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
	}
}

// BenchmarkSubmitWALDefault measures the default fsync window (0 =
// natural batching: a submit joins whatever fsync is already in
// flight). This is the configuration the 2× acceptance bound holds on.
func BenchmarkSubmitWALDefault(b *testing.B) {
	benchmarkSubmit(b, Config{WALDir: b.TempDir()})
}

// BenchmarkSubmitWALWindow2ms adds a 2ms coalescing window: higher p50
// by construction (every commit waits out the window), fewer fsyncs —
// the trade the -fsync-window flag exposes.
func BenchmarkSubmitWALWindow2ms(b *testing.B) {
	benchmarkSubmit(b, Config{WALDir: b.TempDir(), FsyncWindow: 2 * time.Millisecond})
}
