package ingest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"profileme/internal/profile"
)

// TestConservationProperty is a randomized property test of the service's
// central accounting invariant: every sample the fleet's hardware captured
// is accounted exactly once, as either aggregated or lost. Formally, after
// a drain,
//
//	Σ over distinct admitted-config shards ever submitted of Captured(shard)
//	    == Aggregate.Samples() + Aggregate.Lost()
//
// no matter how submissions, duplicates, refusals (429 full / 503
// draining / DropOldest evictions), retries, and the drain interleave.
// Each seed builds a random service shape (queue depth, overflow policy,
// aggregator speed, drain timing) and a random concurrent client schedule,
// then checks the ledger. Config-mismatched shards are refused without
// accounting — they are never part of this aggregate's population — and so
// contribute nothing to either side.
func TestConservationProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runConservationTrial(t, seed)
		})
	}
}

func runConservationTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))

	cfg := Config{
		QueueDepth: 1 + rng.Intn(4),
		Interval:   16,
		Width:      4,
	}
	if rng.Intn(2) == 0 {
		cfg.Policy = DropOldest
	}
	// A randomly slowed aggregator varies how much of the schedule runs
	// against a full queue vs an empty one.
	if delay := rng.Intn(3); delay > 0 {
		d := time.Duration(delay*50) * time.Microsecond
		cfg.mergeHook = func(Submission) { time.Sleep(d) }
	}
	svc, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Occasionally leave the aggregator stopped: everything beyond the
	// queue is refused and the whole backlog flushes inline at drain.
	if rng.Intn(4) != 0 {
		svc.Start()
	}

	// Shard pool. A shard may carry its own hardware loss (Captured counts
	// it), and a few are built with a mismatched sampling configuration.
	nShards := 8 + rng.Intn(24)
	shards := make([]Submission, nShards)
	mismatched := make([]bool, nShards)
	for i := range shards {
		var db *profile.DB
		if rng.Intn(8) == 0 {
			mismatched[i] = true
			db = profile.NewDB(999, 0, 4) // interval != cfg.Interval
		} else {
			db = testShard(uint64(seed)*1000+uint64(i), 1+rng.Intn(30))
			if rng.Intn(3) == 0 {
				db.RecordLoss(uint64(1 + rng.Intn(10)))
			}
		}
		shards[i] = Submission{Shard: fmt.Sprintf("shard-%03d", i), DB: db}
	}

	// Pre-draw every client's schedule from the single RNG so the trial is
	// reproducible from its seed; the nondeterminism under test is the
	// goroutine interleaving, not the op sequence.
	type op struct {
		shard       int
		retryOnFull int // extra attempts after ErrQueueFull
	}
	nClients := 2 + rng.Intn(4)
	scripts := make([][]op, nClients)
	for c := range scripts {
		n := 20 + rng.Intn(40)
		for j := 0; j < n; j++ {
			scripts[c] = append(scripts[c], op{
				shard:       rng.Intn(nShards),
				retryOnFull: rng.Intn(3),
			})
		}
	}
	drainMid := rng.Intn(3) == 0 // sometimes drain cuts the schedule off

	var (
		mu        sync.Mutex
		submitted = make(map[int]bool) // shard index -> ever reached Submit
	)
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(script []op) {
			defer wg.Done()
			for _, o := range script {
				for attempt := 0; ; attempt++ {
					mu.Lock()
					submitted[o.shard] = true
					mu.Unlock()
					err := svc.Submit(shards[o.shard])
					switch {
					case err == nil, errors.Is(err, ErrDuplicate), errors.Is(err, ErrDraining):
					case errors.Is(err, ErrConfigMismatch):
						if !mismatched[o.shard] {
							t.Errorf("shard %d: unexpected config mismatch", o.shard)
						}
					case errors.Is(err, ErrQueueFull):
						if attempt < o.retryOnFull {
							runtime.Gosched()
							continue
						}
					default:
						t.Errorf("shard %d: unexpected error %v", o.shard, err)
					}
					break
				}
			}
		}(scripts[c])
	}
	if drainMid {
		svc.BeginDrain()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	var want uint64
	for idx := range submitted {
		if !mismatched[idx] {
			want += shards[idx].Captured()
		}
	}
	agg := svc.Aggregate()
	got := agg.Samples() + agg.Lost()
	if got != want {
		t.Fatalf("conservation violated: samples %d + lost %d = %d, want Σ captured over %d distinct shards = %d",
			agg.Samples(), agg.Lost(), got, len(submitted), want)
	}

	// Ledger cross-checks: the service-level loss counter covers exactly
	// the refused-and-never-accepted shards (merged shards' own hardware
	// loss is carried by Merge, not the refusal ledger), and reversals
	// never exceed what was ever recorded.
	st := svc.Stats()
	if st.SamplesLost > agg.Lost() {
		t.Fatalf("service loss ledger %d exceeds aggregate loss %d", st.SamplesLost, agg.Lost())
	}
	if st.Merged+st.MergeFailed > uint64(len(submitted)) {
		t.Fatalf("merged %d + merge-failed %d exceeds %d distinct shards",
			st.Merged, st.MergeFailed, len(submitted))
	}
}
