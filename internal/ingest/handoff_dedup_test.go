package ingest

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"profileme/internal/profile"
)

// encodeDonor builds a donor aggregate with samples AND standing loss,
// serializes it as a handoff envelope, and returns (wire bytes,
// captured total, ledger shards).
func encodeDonor(t *testing.T) ([]byte, uint64, []string) {
	t.Helper()
	donor := profile.NewDB(16, 0, 4)
	if err := donor.Merge(testShard(11, 40)); err != nil {
		t.Fatal(err)
	}
	donor.RecordLoss(7)
	shards := []string{"donor/s1", "donor/s2", "donor/s3"}
	body, err := EncodeHandoff("donor-1", donor.Save, shards)
	if err != nil {
		t.Fatal(err)
	}
	return body, donor.Samples() + donor.Lost(), shards
}

// TestAcceptHandoffDuplicateDelivery delivers the SAME serialized
// envelope twice — the sender retrying after a lost ack — and demands
// the second delivery dedupe: ErrDuplicate carrying the original
// captured count, no second merge (bit-identical aggregate), no ledger
// growth, conservation exact.
func TestAcceptHandoffDuplicateDelivery(t *testing.T) {
	body, captured, shards := encodeDonor(t)
	svc, err := NewService(Config{QueueDepth: 8, Interval: 16, WALDir: filepath.Join(t.TempDir(), "wal")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.CloseWAL()

	h1, err := DecodeHandoff(body)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := svc.AcceptHandoff(h1); err != nil || got != captured {
		t.Fatalf("first delivery: got %d err %v, want %d nil", got, err, captured)
	}
	digest := aggDigest(t, svc)
	ledger := len(svc.AdmittedShards())

	// Byte-identical redelivery: decode the same wire bytes again (the
	// sender reuses its encoded body, as the export cache does).
	h2, err := DecodeHandoff(body)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Key == "" || h2.Key != h1.Key {
		t.Fatalf("content keys differ across identical bytes: %q vs %q", h1.Key, h2.Key)
	}
	got, err := svc.AcceptHandoff(h2)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("redelivery: err=%v, want ErrDuplicate", err)
	}
	if got != captured {
		t.Fatalf("duplicate ack carried %d captured, want the original %d", got, captured)
	}
	if d2 := aggDigest(t, svc); string(d2) != string(digest) {
		t.Fatal("redelivery changed the aggregate (double-merge)")
	}
	if n := len(svc.AdmittedShards()); n != ledger {
		t.Fatalf("redelivery grew the ledger: %d -> %d", ledger, n)
	}
	conserve(t, svc, captured, "after duplicate delivery")
	st := svc.Stats()
	if st.HandoffsIn != 1 || st.HandoffCaptured != captured {
		t.Fatalf("handoffs_in=%d captured=%d, want 1/%d (duplicate must not count)", st.HandoffsIn, st.HandoffCaptured, captured)
	}
	if st.Duplicates == 0 {
		t.Fatal("duplicate delivery not counted in duplicate_submissions")
	}
	_ = shards
}

// TestAcceptHandoffDuplicateConcurrent races two deliveries of the same
// envelope — exactly the interleaving a network-chaos duplicate
// produces. Exactly one must merge; the other must dedupe.
func TestAcceptHandoffDuplicateConcurrent(t *testing.T) {
	body, captured, _ := encodeDonor(t)
	svc, err := NewService(Config{QueueDepth: 8, Interval: 16, WALDir: filepath.Join(t.TempDir(), "wal")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.CloseWAL()

	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		h, err := DecodeHandoff(body)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, h Handoff) {
			defer wg.Done()
			_, errs[i] = svc.AcceptHandoff(h)
		}(i, h)
	}
	wg.Wait()
	var merged, deduped int
	for _, err := range errs {
		switch {
		case err == nil:
			merged++
		case errors.Is(err, ErrDuplicate):
			deduped++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if merged != 1 || deduped != 1 {
		t.Fatalf("merged=%d deduped=%d, want exactly 1 and 1", merged, deduped)
	}
	conserve(t, svc, captured, "after concurrent duplicate delivery")
}

// TestAcceptHandoffDedupeSurvivesRecovery delivers, crashes, recovers
// from the WAL, and redelivers the same bytes: the dedupe ledger must
// have survived the crash — the donor's retry after the receiver's
// restart is the scenario the checkpoint/WAL persistence of handoff
// keys exists for.
func TestAcceptHandoffDedupeSurvivesRecovery(t *testing.T) {
	body, captured, _ := encodeDonor(t)
	dir := t.TempDir()
	cfg := Config{QueueDepth: 8, Interval: 16, WALDir: filepath.Join(dir, "wal")}
	s1, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHandoff(body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.AcceptHandoff(h); err != nil {
		t.Fatal(err)
	}
	if err := s1.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	s2, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseWAL()
	conserve(t, s2, captured, "handoff recovery")
	h2, err := DecodeHandoff(body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.AcceptHandoff(h2)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("redelivery after recovery: err=%v, want ErrDuplicate", err)
	}
	if got != captured {
		t.Fatalf("duplicate ack after recovery carried %d, want %d", got, captured)
	}
	conserve(t, s2, captured, "after post-recovery redelivery")
}

// TestAdoptShards: adoption installs dedupe obligations only — no
// samples move — and the obligation survives both a duplicate adopt
// call and a crash-recovery.
func TestAdoptShards(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{QueueDepth: 8, Interval: 16, WALDir: filepath.Join(dir, "wal")}
	s1, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s1.AdoptShards("old-owner", []string{"moved/a", "moved/b"})
	if err != nil || n != 2 {
		t.Fatalf("adopt: n=%d err=%v, want 2 nil", n, err)
	}
	if got := s1.Aggregate().Samples() + s1.Aggregate().Lost(); got != 0 {
		t.Fatalf("adoption moved samples: %d captured appeared from nowhere", got)
	}
	// A retry of a shard the old owner already merged dedupes here now.
	if err := s1.Submit(sub("moved/a", 1, 10)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("submit of adopted shard: err=%v, want ErrDuplicate", err)
	}
	if s1.HandoffProvenance("moved/b") != "old-owner" {
		t.Fatal("adoption provenance missing")
	}
	// Idempotent: re-adoption installs nothing new.
	if n, err := s1.AdoptShards("old-owner", []string{"moved/a", "moved/b"}); err != nil || n != 0 {
		t.Fatalf("re-adopt: n=%d err=%v, want 0 nil", n, err)
	}
	if st := s1.Stats(); st.AdoptedShards != 2 {
		t.Fatalf("adopted_shards=%d, want 2", st.AdoptedShards)
	}
	if err := s1.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// The obligation is WAL-durable: a crashed-and-recovered instance
	// still dedupes the moved shards.
	s2, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseWAL()
	if err := s2.Submit(sub("moved/b", 2, 10)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("submit of adopted shard after recovery: err=%v, want ErrDuplicate", err)
	}
	if got := s2.Aggregate().Samples() + s2.Aggregate().Lost(); got != 0 {
		t.Fatalf("recovery invented %d captured samples from an adopt record", got)
	}
}

// TestSealRefusesWithoutLoss: after Seal, a NEW shard is refused with
// ZERO side effects (no loss accounting — the export snapshot must be
// the final word on this instance's books), while a duplicate of an
// already-admitted shard still answers honestly.
func TestSealRefusesWithoutLoss(t *testing.T) {
	svc, err := NewService(Config{QueueDepth: 8, Interval: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pre := sub("pre-seal", 3, 25)
	if err := svc.Submit(pre); err != nil {
		t.Fatal(err)
	}
	svc.Seal()
	if !svc.Sealed() {
		t.Fatal("Sealed() false after Seal")
	}
	if err := svc.Submit(sub("post-seal", 4, 30)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-seal submit: err=%v, want ErrDraining", err)
	}
	if lost := svc.Aggregate().Lost(); lost != 0 {
		t.Fatalf("post-seal refusal recorded %d loss; the export envelope could never carry it", lost)
	}
	if st := svc.Stats(); st.SamplesLost != 0 || !st.Sealed {
		t.Fatalf("stats: samples_lost=%d sealed=%v, want 0 true", st.SamplesLost, st.Sealed)
	}
	if err := svc.Submit(sub("pre-seal", 3, 25)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate of pre-seal shard: err=%v, want ErrDuplicate (its samples ride in the envelope)", err)
	}
}
