package ingest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"profileme/internal/profile"
)

// The submission wire format is a small JSON envelope around the binary
// profile-database envelope of DESIGN.md §7:
//
//	{"shard": "compress/s003", "profile": "<base64 of profile.Save bytes>"}
//
// Layering the two envelopes keeps every integrity property of the disk
// format on the wire: the inner CRC32-C catches payload damage, the
// version field catches skew between old workers and a new collector,
// and both decode failures surface as the same typed profile.Err*
// errors callers already know how to classify.

// ErrBadSubmit reports a submission whose JSON envelope is malformed:
// undecodable JSON, a missing shard id, or an empty profile payload.
// Damage *inside* the payload surfaces as profile.ErrCorrupt /
// ErrTruncated / ErrVersionSkew instead.
var ErrBadSubmit = errors.New("ingest: malformed submission")

// submitEnvelope is the JSON wire format ([]byte marshals as base64).
type submitEnvelope struct {
	Shard   string `json:"shard"`
	Profile []byte `json:"profile"`
}

// EncodeSubmit serializes one shard database as a submission body.
func EncodeSubmit(shard string, db *profile.DB) ([]byte, error) {
	if shard == "" {
		return nil, fmt.Errorf("ingest: encode: empty shard id: %w", ErrBadSubmit)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		return nil, err
	}
	return json.Marshal(submitEnvelope{Shard: shard, Profile: buf.Bytes()})
}

// DecodeSubmit parses a submission body. Every failure is typed —
// ErrBadSubmit for envelope problems, profile.ErrCorrupt/ErrTruncated/
// ErrVersionSkew for payload problems — and never a panic, whatever the
// bytes; FuzzDecodeSubmit holds it to that. The caller bounds the body
// size (http.MaxBytesReader); the inner decoder additionally caps the
// declared payload allocation on its own.
func DecodeSubmit(body []byte) (Submission, error) {
	var env submitEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return Submission{}, fmt.Errorf("ingest: submission envelope: %v: %w", err, ErrBadSubmit)
	}
	if env.Shard == "" {
		return Submission{}, fmt.Errorf("ingest: submission without a shard id: %w", ErrBadSubmit)
	}
	if len(env.Profile) == 0 {
		return Submission{}, fmt.Errorf("ingest: submission %q without a profile payload: %w", env.Shard, ErrBadSubmit)
	}
	db, err := profile.LoadDB(bytes.NewReader(env.Profile))
	if err != nil {
		return Submission{}, fmt.Errorf("ingest: submission %q: %w", env.Shard, err)
	}
	return Submission{Shard: env.Shard, DB: db}, nil
}

// The drain-handoff wire format reuses the same double-envelope layering
// as submissions: the donor's whole aggregate rides as profile.Save
// bytes (inner CRC32-C, version field), wrapped in JSON naming the donor
// instance and the shard ids its admission ledger holds. Shipping the
// ledger is what keeps the tier's dedupe honest across a drain: a client
// retrying a shard the donor already merged hits the successor next, and
// the successor must answer "duplicate", not merge it twice.
type handoffEnvelope struct {
	From    string   `json:"from"`
	Profile []byte   `json:"profile"`
	Shards  []string `json:"shards"`
}

// Handoff is one decoded drain handoff: a donor instance's full
// aggregate plus its admitted-shard ledger.
type Handoff struct {
	// From is the donor's instance id (ledger provenance).
	From string
	// DB is the donor's aggregate, loss ledger included.
	DB *profile.DB
	// Shards are the shard ids the donor had admitted (queued or
	// merged); the receiver marks them admitted so retries dedupe.
	Shards []string
	// Key is the envelope's content digest (set by DecodeHandoff over
	// the wire bytes, and carried through WAL records). A redelivery of
	// the SAME serialized envelope — a donor or router retrying after a
	// lost 202 — carries the same key, so AcceptHandoff dedupes it to a
	// duplicate ack instead of double-merging the donor's samples. A
	// donor that re-ENCODES (crash and re-drain) gets a fresh key; only
	// byte-identical retries dedupe, which is exactly the retry contract
	// (the sender must reuse the encoded body, as the export cache and
	// DrainHandoff both do).
	Key string
}

// HandoffKey digests a handoff envelope's content. Deterministic over
// the serialized fields, not the JSON framing, so the key survives a
// WAL round trip.
func HandoffKey(from string, profileBytes []byte, shards []string) string {
	h := sha256.New()
	io.WriteString(h, from)
	h.Write([]byte{0})
	h.Write(profileBytes)
	for _, sh := range shards {
		h.Write([]byte{0})
		io.WriteString(h, sh)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// EncodeHandoff serializes a donor aggregate for shipment to the ring
// successor. save is the donor's serializer (SafeDB.Save) so the CRC
// envelope is written under the aggregate's own lock.
func EncodeHandoff(from string, save func(io.Writer) error, shards []string) ([]byte, error) {
	if from == "" {
		return nil, fmt.Errorf("ingest: encode handoff: empty instance id: %w", ErrBadSubmit)
	}
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		return nil, err
	}
	return json.Marshal(handoffEnvelope{From: from, Profile: buf.Bytes(), Shards: shards})
}

// DecodeHandoff parses a handoff body with the same typed-failure
// contract as DecodeSubmit.
func DecodeHandoff(body []byte) (Handoff, error) {
	var env handoffEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return Handoff{}, fmt.Errorf("ingest: handoff envelope: %v: %w", err, ErrBadSubmit)
	}
	if env.From == "" {
		return Handoff{}, fmt.Errorf("ingest: handoff without a donor instance id: %w", ErrBadSubmit)
	}
	if len(env.Profile) == 0 {
		return Handoff{}, fmt.Errorf("ingest: handoff from %q without a profile payload: %w", env.From, ErrBadSubmit)
	}
	db, err := profile.LoadDB(bytes.NewReader(env.Profile))
	if err != nil {
		return Handoff{}, fmt.Errorf("ingest: handoff from %q: %w", env.From, err)
	}
	return Handoff{
		From:   env.From,
		DB:     db,
		Shards: env.Shards,
		Key:    HandoffKey(env.From, env.Profile, env.Shards),
	}, nil
}
