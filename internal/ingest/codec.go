package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"profileme/internal/profile"
)

// The submission wire format is a small JSON envelope around the binary
// profile-database envelope of DESIGN.md §7:
//
//	{"shard": "compress/s003", "profile": "<base64 of profile.Save bytes>"}
//
// Layering the two envelopes keeps every integrity property of the disk
// format on the wire: the inner CRC32-C catches payload damage, the
// version field catches skew between old workers and a new collector,
// and both decode failures surface as the same typed profile.Err*
// errors callers already know how to classify.

// ErrBadSubmit reports a submission whose JSON envelope is malformed:
// undecodable JSON, a missing shard id, or an empty profile payload.
// Damage *inside* the payload surfaces as profile.ErrCorrupt /
// ErrTruncated / ErrVersionSkew instead.
var ErrBadSubmit = errors.New("ingest: malformed submission")

// submitEnvelope is the JSON wire format ([]byte marshals as base64).
type submitEnvelope struct {
	Shard   string `json:"shard"`
	Profile []byte `json:"profile"`
}

// EncodeSubmit serializes one shard database as a submission body.
func EncodeSubmit(shard string, db *profile.DB) ([]byte, error) {
	if shard == "" {
		return nil, fmt.Errorf("ingest: encode: empty shard id: %w", ErrBadSubmit)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		return nil, err
	}
	return json.Marshal(submitEnvelope{Shard: shard, Profile: buf.Bytes()})
}

// DecodeSubmit parses a submission body. Every failure is typed —
// ErrBadSubmit for envelope problems, profile.ErrCorrupt/ErrTruncated/
// ErrVersionSkew for payload problems — and never a panic, whatever the
// bytes; FuzzDecodeSubmit holds it to that. The caller bounds the body
// size (http.MaxBytesReader); the inner decoder additionally caps the
// declared payload allocation on its own.
func DecodeSubmit(body []byte) (Submission, error) {
	var env submitEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return Submission{}, fmt.Errorf("ingest: submission envelope: %v: %w", err, ErrBadSubmit)
	}
	if env.Shard == "" {
		return Submission{}, fmt.Errorf("ingest: submission without a shard id: %w", ErrBadSubmit)
	}
	if len(env.Profile) == 0 {
		return Submission{}, fmt.Errorf("ingest: submission %q without a profile payload: %w", env.Shard, ErrBadSubmit)
	}
	db, err := profile.LoadDB(bytes.NewReader(env.Profile))
	if err != nil {
		return Submission{}, fmt.Errorf("ingest: submission %q: %w", env.Shard, err)
	}
	return Submission{Shard: env.Shard, DB: db}, nil
}
