package ingest

import (
	"io"
	"sync"
)

// SyncWriter serializes writes to an underlying writer. The collector
// stack logs from many goroutines (admission handlers, the aggregator,
// the HTTP layer, the router's probe loop), and under a soak flood the
// per-line Fprintf calls interleave mid-line on a shared stderr; every
// component of one process should share a single SyncWriter so each
// logged line comes out whole and attributable.
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w; a nil w yields a writer that discards.
func NewSyncWriter(w io.Writer) *SyncWriter { return &SyncWriter{w: w} }

// Write forwards one write under the mutex.
func (s *SyncWriter) Write(p []byte) (int, error) {
	if s.w == nil {
		return len(p), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
