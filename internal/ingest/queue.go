// Package ingest is the server-side admission layer of the profile
// collection pipeline: a bounded submission queue with explicit overflow
// policies, a circuit breaker guarding persistence, and an aggregator
// service that folds accepted shard databases into one loss-corrected
// aggregate.
//
// The design carries the paper's degradation contract across the network
// boundary: like ProfileMe's saturating counters and accounted
// interrupt-drop losses, overload here never corrupts the statistics —
// a submitted shard either merges into the aggregate or its captured
// sample count is recorded as loss (DB.RecordLoss), so the estimators
// stay centred no matter how hard the ingest path is hammered. Because
// clients retry (429/503 are transient in the sink taxonomy, and a lost
// 202 response makes a merged shard look undelivered), the service keeps
// a per-shard admission ledger: a resubmission of an admitted shard is
// acknowledged without re-merging, a repeat refusal accounts nothing
// new, and a refused shard that is later accepted has its recorded loss
// reversed (DB.ReverseLoss). The conservation invariant the soak tests
// pin down therefore ranges over distinct shards, however many times
// each was submitted:
//
//	Σ captured(distinct submitted shards) == aggregate.Samples() + aggregate.Lost()
package ingest

import (
	"fmt"
	"sync"

	"profileme/internal/profile"
	"profileme/internal/wal"
)

// Policy says what Offer does when the queue is full.
type Policy int

const (
	// RejectNew refuses the incoming submission (the HTTP layer turns
	// this into 429 Too Many Requests — backpressure to the worker).
	RejectNew Policy = iota
	// DropOldest evicts the oldest queued submission to admit the new
	// one — freshness over fairness; the evicted shard is accounted as
	// loss.
	DropOldest
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case RejectNew:
		return "reject"
	case DropOldest:
		return "drop-oldest"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses the flag spelling of a policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "reject":
		return RejectNew, nil
	case "drop-oldest":
		return DropOldest, nil
	}
	return 0, fmt.Errorf("ingest: unknown overflow policy %q (want reject or drop-oldest)", s)
}

// Submission is one decoded shard profile waiting to be merged.
type Submission struct {
	// Shard identifies the submitting worker/shard (e.g. "compress/s003").
	Shard string
	// DB is the decoded shard database; the queue takes ownership.
	DB *profile.DB

	// walPos is where Submit staged this submission's admit record
	// (zero when the WAL is disabled). It rides through the queue so
	// the aggregator can release the position from the checkpoint
	// barrier's pending set when the submission resolves.
	walPos wal.Pos
}

// Captured returns the total samples the shard's hardware captured —
// delivered plus already-lost — which is what the aggregate loses if
// this submission never merges.
func (s Submission) Captured() uint64 { return s.DB.Samples() + s.DB.Lost() }

// QueueStats is a snapshot of the queue's counters.
type QueueStats struct {
	Capacity  int    `json:"capacity"`
	Depth     int    `json:"depth"`
	HighWater int    `json:"high_water"` // max depth ever observed
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"` // refused at admission (full or closed)
	Dropped   uint64 `json:"dropped"`  // accepted earlier, evicted by DropOldest
}

// Queue is a bounded MPSC submission queue: many HTTP handlers Offer,
// one aggregator goroutine Waits. Overflow behavior is the configured
// Policy; Close starts the drain (Offer refuses, Wait hands out the
// backlog then reports exhaustion).
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Submission
	head   int
	count  int
	policy Policy
	closed bool
	stats  QueueStats
}

// NewQueue builds a queue with the given capacity and overflow policy.
func NewQueue(capacity int, policy Policy) (*Queue, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("ingest: queue capacity %d < 1", capacity)
	}
	if policy != RejectNew && policy != DropOldest {
		return nil, fmt.Errorf("ingest: unknown overflow policy %d", int(policy))
	}
	q := &Queue{buf: make([]Submission, capacity), policy: policy}
	q.cond = sync.NewCond(&q.mu)
	return q, nil
}

// OfferResult says how Offer disposed of a submission. Full and Closed
// are distinct on purpose: full means "retry soon" (429), closed means
// "this instance is draining, go elsewhere" (503) — collapsing them
// would send retry-soon advice from a server that is shutting down.
type OfferResult int

const (
	// OfferAccepted: the submission was enqueued.
	OfferAccepted OfferResult = iota
	// OfferFull: refused, queue at capacity under RejectNew.
	OfferFull
	// OfferClosed: refused, the queue is closed (drain in progress).
	OfferClosed
)

// Offer tries to enqueue s. res says whether s was admitted and, if
// not, why; dropped holds any older submission evicted to make room
// (DropOldest only). The caller owns accounting for both refusals and
// evictions — Queue counts them but does not know about the aggregate.
func (q *Queue) Offer(s Submission) (dropped []Submission, res OfferResult) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		q.stats.Rejected++
		return nil, OfferClosed
	}
	if q.count == len(q.buf) {
		if q.policy == RejectNew {
			q.stats.Rejected++
			return nil, OfferFull
		}
		// DropOldest: evict the head.
		old := q.buf[q.head]
		q.buf[q.head] = Submission{}
		q.head = (q.head + 1) % len(q.buf)
		q.count--
		q.stats.Dropped++
		dropped = append(dropped, old)
	}
	q.buf[(q.head+q.count)%len(q.buf)] = s
	q.count++
	q.stats.Accepted++
	if q.count > q.stats.HighWater {
		q.stats.HighWater = q.count
	}
	q.cond.Signal()
	return dropped, OfferAccepted
}

// Wait blocks until a submission is available and returns it; ok is
// false once the queue is closed AND fully drained — the aggregator's
// signal to write the final checkpoint and exit.
func (q *Queue) Wait() (s Submission, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.count == 0 {
		return Submission{}, false
	}
	s = q.buf[q.head]
	q.buf[q.head] = Submission{}
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return s, true
}

// Close starts the drain: subsequent Offers are refused, queued
// submissions keep flowing out of Wait until the backlog is empty.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len returns the current depth.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Stats returns a snapshot of the counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := q.stats
	st.Capacity = len(q.buf)
	st.Depth = q.count
	return st
}
