package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"profileme/internal/profile"
)

// WAL record payloads reuse the submission codec's double-envelope
// layering: a small JSON frame naming the record kind, wrapped around
// the binary profile envelope of DESIGN.md §7. The WAL adds its own
// CRC32-C frame per record, so a damaged record is cut at the WAL layer
// before this codec ever sees it; the inner profile CRC still guards
// against encode-time corruption.
//
// Three kinds exist. Refusals deliberately have no record: a refusal
// is just the ABSENCE of a resolution for an admit record, and the
// standing-loss ledger entry rides in the next checkpoint. Replaying an
// admit record whose submission was refused pre-crash merges it instead
// — strictly better (the payload was durable anyway), and conservation
// holds because the shard's captured samples count once either way.
// Adopt records carry no profile: a ledger adoption moves DEDUPE
// obligations (shard ids whose samples live elsewhere in the fleet),
// never samples, so replaying one reconstructs admitted-with-provenance
// entries and nothing in the aggregate.
const (
	walKindAdmit   = "admit"
	walKindHandoff = "handoff"
	walKindAdopt   = "adopt"
)

// ErrBadWALRecord reports a structurally invalid WAL record payload —
// possible only through an encoder bug or post-CRC memory corruption,
// so replay treats it as a torn record (stop, don't crash).
var ErrBadWALRecord = errors.New("ingest: malformed wal record")

// walEnvelope is the JSON frame ([]byte marshals as base64).
type walEnvelope struct {
	Kind    string   `json:"kind"`
	Shard   string   `json:"shard,omitempty"`  // admit
	From    string   `json:"from,omitempty"`   // handoff/adopt: donor instance
	Shards  []string `json:"shards,omitempty"` // handoff/adopt: shard ids
	Key     string   `json:"key,omitempty"`    // handoff: envelope content digest
	Profile []byte   `json:"profile,omitempty"`
}

// encodeAdmitRecord serializes a submission for the WAL. The shard DB
// is re-encoded rather than reusing the wire bytes because Submit's
// callers may construct Submissions in-process (tests, replay of
// witness copies) with no wire form at hand.
func encodeAdmitRecord(sub Submission) ([]byte, error) {
	var buf bytes.Buffer
	if err := sub.DB.Save(&buf); err != nil {
		return nil, err
	}
	return json.Marshal(walEnvelope{Kind: walKindAdmit, Shard: sub.Shard, Profile: buf.Bytes()})
}

// encodeHandoffRecord serializes an accepted drain handoff for the WAL.
// The content key is carried explicitly rather than recomputed: the
// re-serialized profile bytes need not match the wire bytes the key was
// digested over.
func encodeHandoffRecord(h Handoff) ([]byte, error) {
	var buf bytes.Buffer
	if err := h.DB.Save(&buf); err != nil {
		return nil, err
	}
	return json.Marshal(walEnvelope{Kind: walKindHandoff, From: h.From, Shards: h.Shards, Key: h.Key, Profile: buf.Bytes()})
}

// encodeAdoptRecord serializes a ledger adoption (no profile payload:
// adoption moves dedupe obligations, not samples).
func encodeAdoptRecord(from string, shards []string) ([]byte, error) {
	return json.Marshal(walEnvelope{Kind: walKindAdopt, From: from, Shards: shards})
}

// decodeWALRecord parses one WAL record payload. Exactly one of sub or
// h is meaningful, selected by kind.
func decodeWALRecord(payload []byte) (kind string, sub Submission, h Handoff, err error) {
	var env walEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return "", Submission{}, Handoff{}, fmt.Errorf("ingest: wal record envelope: %v: %w", err, ErrBadWALRecord)
	}
	if env.Kind == walKindAdopt {
		// Adoption records are profile-free by design.
		if env.From == "" || len(env.Shards) == 0 {
			return "", Submission{}, Handoff{}, fmt.Errorf("ingest: wal adopt record without donor or shards: %w", ErrBadWALRecord)
		}
		return walKindAdopt, Submission{}, Handoff{From: env.From, Shards: env.Shards}, nil
	}
	if len(env.Profile) == 0 {
		return "", Submission{}, Handoff{}, fmt.Errorf("ingest: wal %s record without a profile payload: %w", env.Kind, ErrBadWALRecord)
	}
	db, err := profile.LoadDB(bytes.NewReader(env.Profile))
	if err != nil {
		return "", Submission{}, Handoff{}, fmt.Errorf("ingest: wal %s record: %w", env.Kind, err)
	}
	switch env.Kind {
	case walKindAdmit:
		if env.Shard == "" {
			return "", Submission{}, Handoff{}, fmt.Errorf("ingest: wal admit record without a shard id: %w", ErrBadWALRecord)
		}
		return walKindAdmit, Submission{Shard: env.Shard, DB: db}, Handoff{}, nil
	case walKindHandoff:
		if env.From == "" {
			return "", Submission{}, Handoff{}, fmt.Errorf("ingest: wal handoff record without a donor id: %w", ErrBadWALRecord)
		}
		return walKindHandoff, Submission{}, Handoff{From: env.From, DB: db, Shards: env.Shards, Key: env.Key}, nil
	}
	return "", Submission{}, Handoff{}, fmt.Errorf("ingest: wal record kind %q: %w", env.Kind, ErrBadWALRecord)
}
