package ingest

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"profileme/internal/profile"
)

func testServiceConfig(dir string) Config {
	return Config{
		QueueDepth:     4,
		Interval:       16,
		Width:          4,
		CheckpointPath: filepath.Join(dir, "agg.db"),
	}
}

// TestServiceOverflowAccounting is the deterministic half of the overload
// contract: with the aggregator not yet started, a burst beyond queue
// capacity is refused at admission, and every refused shard's captured
// samples land in the aggregate's loss accounting — exactly.
func TestServiceOverflowAccounting(t *testing.T) {
	svc, err := NewService(testServiceConfig(t.TempDir()), nil)
	if err != nil {
		t.Fatal(err)
	}

	const n = 16 // 4x queue capacity
	var wantMerged, wantLost uint64
	var accepted, rejected int
	for i := 0; i < n; i++ {
		s := sub(fmt.Sprintf("s%03d", i), uint64(i), 10+i)
		err := svc.Submit(s)
		switch {
		case err == nil:
			accepted++
			wantMerged += s.Captured()
		case errors.Is(err, ErrQueueFull):
			rejected++
			wantLost += s.Captured()
		default:
			t.Fatalf("submission %d: unexpected error %v", i, err)
		}
	}
	if accepted != 4 || rejected != 12 {
		t.Fatalf("accepted %d rejected %d, want 4/12", accepted, rejected)
	}

	// Drain flushes the backlog inline and writes the final checkpoint.
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	agg := svc.Aggregate()
	if got := agg.Samples(); got != wantMerged {
		t.Fatalf("aggregate samples %d, want %d", got, wantMerged)
	}
	if got := agg.Lost(); got != wantLost {
		t.Fatalf("aggregate lost %d, want %d (reconciliation must be exact)", got, wantLost)
	}
	st := svc.Stats()
	if st.OverloadRejected != 12 || st.SamplesLost != wantLost || st.Merged != 4 {
		t.Fatalf("stats %+v", st)
	}

	// The final checkpoint must be CRC-valid and carry the same totals.
	loaded, err := profile.LoadFile(svc.cfg.CheckpointPath)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if loaded.Samples() != wantMerged || loaded.Lost() != wantLost {
		t.Fatalf("checkpoint totals %d/%d, want %d/%d",
			loaded.Samples(), loaded.Lost(), wantMerged, wantLost)
	}
}

// TestServiceDropOldestAccounting: with DropOldest, the newest burst
// survives and evicted shards are accounted as loss.
func TestServiceDropOldestAccounting(t *testing.T) {
	cfg := testServiceConfig(t.TempDir())
	cfg.Policy = DropOldest
	cfg.QueueDepth = 2
	svc, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	var all []Submission
	for i := 0; i < 5; i++ {
		s := sub(fmt.Sprintf("s%03d", i), uint64(i), 10)
		all = append(all, s)
		if err := svc.Submit(s); err != nil {
			t.Fatalf("DropOldest submission %d refused: %v", i, err)
		}
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Last 2 merged; first 3 evicted.
	var wantMerged, wantLost uint64
	for _, s := range all[:3] {
		wantLost += s.Captured()
	}
	for _, s := range all[3:] {
		wantMerged += s.Captured()
	}
	agg := svc.Aggregate()
	if agg.Samples() != wantMerged || agg.Lost() != wantLost {
		t.Fatalf("samples/lost %d/%d, want %d/%d", agg.Samples(), agg.Lost(), wantMerged, wantLost)
	}
	if st := svc.Stats(); st.OverloadDropped != 3 {
		t.Fatalf("dropped %d, want 3", st.OverloadDropped)
	}
}

func TestServiceConfigMismatchRejectedWithoutLoss(t *testing.T) {
	svc, err := NewService(testServiceConfig(t.TempDir()), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := Submission{Shard: "skewed", DB: profile.NewDB(999, 0, 4)}
	if err := svc.Submit(bad); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("mismatched shard: %v", err)
	}
	if got := svc.Aggregate().Lost(); got != 0 {
		t.Fatalf("mismatch accounted as loss (%d): those samples were never in this population", got)
	}
}

// TestServiceBreakerSuspendsCheckpoints: a dead checkpoint path opens the
// breaker after the threshold, later merges short-circuit the write, and
// ingest itself keeps working.
func TestServiceBreakerSuspendsCheckpoints(t *testing.T) {
	cfg := testServiceConfig(t.TempDir())
	cfg.QueueDepth = 64
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour
	var mu sync.Mutex
	persistCalls := 0
	cfg.persist = func() error {
		mu.Lock()
		persistCalls++
		mu.Unlock()
		return errors.New("checkpoint device gone")
	}
	svc, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := svc.Submit(sub(fmt.Sprintf("s%03d", i), uint64(i), 5)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	svc.Start()
	// Drain flushes the queue; the final checkpoint also fails, which
	// Drain must surface — losing the aggregate silently is the one
	// unacceptable outcome.
	if err := svc.Drain(context.Background()); err == nil {
		t.Fatal("drain succeeded with a dead checkpoint path")
	}
	st := svc.Stats()
	if st.Merged != 6 {
		t.Fatalf("merged %d, want 6 (ingest must survive a dead disk)", st.Merged)
	}
	if st.CheckpointFailures < 2 {
		t.Fatalf("checkpoint failures %d, want >= 2", st.CheckpointFailures)
	}
	if st.CheckpointShorted == 0 {
		t.Fatal("no checkpoint was short-circuited: breaker never opened")
	}
	mu.Lock()
	calls := persistCalls
	mu.Unlock()
	// threshold failures + the breaker-bypassing final attempt; every
	// other checkpoint was short-circuited without touching the disk.
	if calls != 3 {
		t.Fatalf("persist called %d times, want 3 (2 to trip + 1 final bypass)", calls)
	}
}

// TestServiceDrainWaitsForBacklog: submissions in flight when the drain
// starts are merged, not lost, and Submit refuses during the drain with
// loss accounting.
func TestServiceDrainWaitsForBacklog(t *testing.T) {
	cfg := testServiceConfig(t.TempDir())
	cfg.QueueDepth = 64
	release := make(chan struct{})
	var once sync.Once
	gate := make(chan struct{})
	cfg.mergeHook = func(Submission) {
		once.Do(func() { close(gate) })
		<-release
	}
	svc, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < 8; i++ {
		s := sub(fmt.Sprintf("s%03d", i), uint64(i), 7)
		want += s.Captured()
		if err := svc.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	svc.Start()
	<-gate // aggregator is mid-merge, backlog queued

	svc.BeginDrain()
	late := sub("late", 99, 7)
	if err := svc.Submit(late); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining service admitted work: %v", err)
	}
	close(release)
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	agg := svc.Aggregate()
	if agg.Samples() != want {
		t.Fatalf("drained samples %d, want %d", agg.Samples(), want)
	}
	if agg.Lost() != late.Captured() {
		t.Fatalf("drain-refused shard not accounted: lost %d, want %d", agg.Lost(), late.Captured())
	}
}

// TestServiceRetryAfterRefusalReversesLoss is the regression test for
// the retry double-count: the sink taxonomy retries 429s, so a shard
// refused (loss-accounted) and later accepted must end up counted
// exactly once — the recorded loss is reversed when the retry merges,
// and a repeat refusal of the same shard accounts nothing new.
// Conservation ranges over distinct shards, not submission attempts.
func TestServiceRetryAfterRefusalReversesLoss(t *testing.T) {
	cfg := testServiceConfig(t.TempDir())
	cfg.QueueDepth = 1
	merged := make(chan Submission, 4)
	cfg.mergeHook = func(s Submission) { merged <- s }
	svc, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sub("s001", 1, 10)
	s2 := sub("s002", 2, 20)
	if err := svc.Submit(s1); err != nil {
		t.Fatal(err)
	}
	// First refusal: the depth-1 queue is full, loss accounted.
	if err := svc.Submit(s2); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue: %v, want ErrQueueFull", err)
	}
	if got := svc.Aggregate().Lost(); got != s2.Captured() {
		t.Fatalf("refusal not accounted: lost %d, want %d", got, s2.Captured())
	}
	// Second refusal of the same shard: a retry, not new loss.
	if err := svc.Submit(s2); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("retry against full queue: %v, want ErrQueueFull", err)
	}
	if got := svc.Aggregate().Lost(); got != s2.Captured() {
		t.Fatalf("repeat refusal double-counted: lost %d, want %d", got, s2.Captured())
	}
	if st := svc.Stats(); st.OverloadRejected != 2 || st.SamplesLost != s2.Captured() {
		t.Fatalf("stats after two refusals: %+v", st)
	}

	// The aggregator empties the queue; the retry is now accepted and
	// the earlier refusal loss reversed.
	svc.Start()
	<-merged // s1 merged, queue empty
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := svc.Submit(s2)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("retry: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("retry never accepted")
		}
		time.Sleep(time.Millisecond)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	agg := svc.Aggregate()
	want := s1.Captured() + s2.Captured()
	if got := agg.Samples() + agg.Lost(); got != want {
		t.Fatalf("conservation violated: samples %d + lost %d = %d, distinct shards captured %d",
			agg.Samples(), agg.Lost(), got, want)
	}
	if agg.Lost() != 0 {
		t.Fatalf("accepted retry left %d samples in the loss ledger", agg.Lost())
	}
	st := svc.Stats()
	if st.SamplesLost != 0 || st.LossReversed != s2.Captured() || st.Merged != 2 {
		t.Fatalf("post-retry stats: %+v", st)
	}
}

// TestServiceDuplicateSubmission: resubmitting an admitted shard (what
// a client does after a lost 202 response) dedupes instead of merging
// twice — whether the original is still queued or already merged, and
// even while the service is draining.
func TestServiceDuplicateSubmission(t *testing.T) {
	svc, err := NewService(testServiceConfig(t.TempDir()), nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sub("s001", 1, 10)
	if err := svc.Submit(s1); err != nil {
		t.Fatal(err)
	}
	// Original still queued: the retry must not occupy a second slot.
	if err := svc.Submit(sub("s001", 1, 10)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("queued duplicate: %v, want ErrDuplicate", err)
	}
	if got := svc.QueueDepth(); got != 1 {
		t.Fatalf("duplicate enqueued: depth %d, want 1", got)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Original merged and the service draining: still a duplicate ack,
	// not a 503-with-loss — the data is already in the aggregate.
	if err := svc.Submit(sub("s001", 1, 10)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("post-drain duplicate: %v, want ErrDuplicate", err)
	}
	agg := svc.Aggregate()
	if agg.Samples() != s1.Captured() || agg.Lost() != 0 {
		t.Fatalf("duplicates changed accounting: samples %d lost %d, want %d/0",
			agg.Samples(), agg.Lost(), s1.Captured())
	}
	if st := svc.Stats(); st.Duplicates != 2 || st.Merged != 1 {
		t.Fatalf("stats %+v, want 2 duplicates / 1 merged", st)
	}
}

// TestServiceConfigMismatchDuringDrain: 409 outranks 503 — a shard from
// a foreign population is never loss-accounted, draining or not.
func TestServiceConfigMismatchDuringDrain(t *testing.T) {
	svc, err := NewService(testServiceConfig(t.TempDir()), nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.BeginDrain()
	bad := Submission{Shard: "skewed", DB: profile.NewDB(999, 0, 4)}
	if err := svc.Submit(bad); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("mismatched shard during drain: %v, want ErrConfigMismatch", err)
	}
	if got := svc.Aggregate().Lost(); got != 0 {
		t.Fatalf("foreign-population shard accounted as loss during drain (%d)", got)
	}
}

// TestServiceClosedQueueRefusesAsDraining: a Submit that passes the
// draining check before Drain closes the queue lands on a closed queue;
// it must get drain semantics (ErrDraining → 503 go-elsewhere), not
// ErrQueueFull's retry-soon — and the retry-then-503 sequence must not
// account the shard's loss twice.
func TestServiceClosedQueueRefusesAsDraining(t *testing.T) {
	svc, err := NewService(testServiceConfig(t.TempDir()), nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.q.Close() // the race window: queue closed, draining flag not yet observed
	s1 := sub("s001", 1, 10)
	if err := svc.Submit(s1); !errors.Is(err, ErrDraining) {
		t.Fatalf("closed queue: %v, want ErrDraining", err)
	}
	if got := svc.Aggregate().Lost(); got != s1.Captured() {
		t.Fatalf("closed-queue refusal not accounted: lost %d, want %d", got, s1.Captured())
	}
	svc.BeginDrain()
	if err := svc.Submit(s1); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining retry: %v, want ErrDraining", err)
	}
	if got := svc.Aggregate().Lost(); got != s1.Captured() {
		t.Fatalf("retry-then-503 double-counted: lost %d, want %d", got, s1.Captured())
	}
}
