package ingest

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"profileme/internal/profile"
)

func testServiceConfig(dir string) Config {
	return Config{
		QueueDepth:     4,
		Interval:       16,
		Width:          4,
		CheckpointPath: filepath.Join(dir, "agg.db"),
	}
}

// TestServiceOverflowAccounting is the deterministic half of the overload
// contract: with the aggregator not yet started, a burst beyond queue
// capacity is refused at admission, and every refused shard's captured
// samples land in the aggregate's loss accounting — exactly.
func TestServiceOverflowAccounting(t *testing.T) {
	svc, err := NewService(testServiceConfig(t.TempDir()), nil)
	if err != nil {
		t.Fatal(err)
	}

	const n = 16 // 4x queue capacity
	var wantMerged, wantLost uint64
	var accepted, rejected int
	for i := 0; i < n; i++ {
		s := sub("s", uint64(i), 10+i)
		err := svc.Submit(s)
		switch {
		case err == nil:
			accepted++
			wantMerged += s.Captured()
		case errors.Is(err, ErrQueueFull):
			rejected++
			wantLost += s.Captured()
		default:
			t.Fatalf("submission %d: unexpected error %v", i, err)
		}
	}
	if accepted != 4 || rejected != 12 {
		t.Fatalf("accepted %d rejected %d, want 4/12", accepted, rejected)
	}

	// Drain flushes the backlog inline and writes the final checkpoint.
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	agg := svc.Aggregate()
	if got := agg.Samples(); got != wantMerged {
		t.Fatalf("aggregate samples %d, want %d", got, wantMerged)
	}
	if got := agg.Lost(); got != wantLost {
		t.Fatalf("aggregate lost %d, want %d (reconciliation must be exact)", got, wantLost)
	}
	st := svc.Stats()
	if st.OverloadRejected != 12 || st.SamplesLost != wantLost || st.Merged != 4 {
		t.Fatalf("stats %+v", st)
	}

	// The final checkpoint must be CRC-valid and carry the same totals.
	loaded, err := profile.LoadFile(svc.cfg.CheckpointPath)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if loaded.Samples() != wantMerged || loaded.Lost() != wantLost {
		t.Fatalf("checkpoint totals %d/%d, want %d/%d",
			loaded.Samples(), loaded.Lost(), wantMerged, wantLost)
	}
}

// TestServiceDropOldestAccounting: with DropOldest, the newest burst
// survives and evicted shards are accounted as loss.
func TestServiceDropOldestAccounting(t *testing.T) {
	cfg := testServiceConfig(t.TempDir())
	cfg.Policy = DropOldest
	cfg.QueueDepth = 2
	svc, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	var all []Submission
	for i := 0; i < 5; i++ {
		s := sub("s", uint64(i), 10)
		all = append(all, s)
		if err := svc.Submit(s); err != nil {
			t.Fatalf("DropOldest submission %d refused: %v", i, err)
		}
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Last 2 merged; first 3 evicted.
	var wantMerged, wantLost uint64
	for _, s := range all[:3] {
		wantLost += s.Captured()
	}
	for _, s := range all[3:] {
		wantMerged += s.Captured()
	}
	agg := svc.Aggregate()
	if agg.Samples() != wantMerged || agg.Lost() != wantLost {
		t.Fatalf("samples/lost %d/%d, want %d/%d", agg.Samples(), agg.Lost(), wantMerged, wantLost)
	}
	if st := svc.Stats(); st.OverloadDropped != 3 {
		t.Fatalf("dropped %d, want 3", st.OverloadDropped)
	}
}

func TestServiceConfigMismatchRejectedWithoutLoss(t *testing.T) {
	svc, err := NewService(testServiceConfig(t.TempDir()), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := Submission{Shard: "skewed", DB: profile.NewDB(999, 0, 4)}
	if err := svc.Submit(bad); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("mismatched shard: %v", err)
	}
	if got := svc.Aggregate().Lost(); got != 0 {
		t.Fatalf("mismatch accounted as loss (%d): those samples were never in this population", got)
	}
}

// TestServiceBreakerSuspendsCheckpoints: a dead checkpoint path opens the
// breaker after the threshold, later merges short-circuit the write, and
// ingest itself keeps working.
func TestServiceBreakerSuspendsCheckpoints(t *testing.T) {
	cfg := testServiceConfig(t.TempDir())
	cfg.QueueDepth = 64
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour
	var mu sync.Mutex
	persistCalls := 0
	cfg.persist = func() error {
		mu.Lock()
		persistCalls++
		mu.Unlock()
		return errors.New("checkpoint device gone")
	}
	svc, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := svc.Submit(sub("s", uint64(i), 5)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	svc.Start()
	// Drain flushes the queue; the final checkpoint also fails, which
	// Drain must surface — losing the aggregate silently is the one
	// unacceptable outcome.
	if err := svc.Drain(context.Background()); err == nil {
		t.Fatal("drain succeeded with a dead checkpoint path")
	}
	st := svc.Stats()
	if st.Merged != 6 {
		t.Fatalf("merged %d, want 6 (ingest must survive a dead disk)", st.Merged)
	}
	if st.CheckpointFailures < 2 {
		t.Fatalf("checkpoint failures %d, want >= 2", st.CheckpointFailures)
	}
	if st.CheckpointShorted == 0 {
		t.Fatal("no checkpoint was short-circuited: breaker never opened")
	}
	mu.Lock()
	calls := persistCalls
	mu.Unlock()
	// threshold failures + the breaker-bypassing final attempt; every
	// other checkpoint was short-circuited without touching the disk.
	if calls != 3 {
		t.Fatalf("persist called %d times, want 3 (2 to trip + 1 final bypass)", calls)
	}
}

// TestServiceDrainWaitsForBacklog: submissions in flight when the drain
// starts are merged, not lost, and Submit refuses during the drain with
// loss accounting.
func TestServiceDrainWaitsForBacklog(t *testing.T) {
	cfg := testServiceConfig(t.TempDir())
	cfg.QueueDepth = 64
	release := make(chan struct{})
	var once sync.Once
	gate := make(chan struct{})
	cfg.mergeHook = func(Submission) {
		once.Do(func() { close(gate) })
		<-release
	}
	svc, err := NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < 8; i++ {
		s := sub("s", uint64(i), 7)
		want += s.Captured()
		if err := svc.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	svc.Start()
	<-gate // aggregator is mid-merge, backlog queued

	svc.BeginDrain()
	late := sub("late", 99, 7)
	if err := svc.Submit(late); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining service admitted work: %v", err)
	}
	close(release)
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	agg := svc.Aggregate()
	if agg.Samples() != want {
		t.Fatalf("drained samples %d, want %d", agg.Samples(), want)
	}
	if agg.Lost() != late.Captured() {
		t.Fatalf("drain-refused shard not accounted: lost %d, want %d", agg.Lost(), late.Captured())
	}
}
