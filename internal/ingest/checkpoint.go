package ingest

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"profileme/internal/profile"
	"profileme/internal/wal"
)

// A checkpoint is the WAL's barrier: everything the service knew at one
// instant — the aggregate image AND the admission ledger — in a single
// atomic file. Restart is checkpoint + WAL tail: replay skips records
// the ledger already covers and re-applies the rest, so the 202 sent
// after a WAL fsync survives a crash at any instruction.
//
// The envelope reuses the §7 conventions (magic, version, payload
// length, gob payload, CRC32-C trailer) with its own magic so a
// checkpoint can never be confused with a bare profile database. Legacy
// bare-PMDB checkpoints (pre-WAL) still load, with an empty ledger.
const (
	ckptMagic   = "PMCK"
	ckptVersion = 1
	// ckptMaxBytes caps the declared payload against forged length
	// fields, like profile.LoadDB's cap plus ledger headroom.
	ckptMaxBytes   = 1<<28 + 1<<24
	ckptHeaderLen  = 16 // magic[4] + version u32 + payload length u64
	legacyDBMagic  = "PMDB"
	corruptSuffix  = ".corrupt"
	handedSuffix   = ".handedoff"
	ckptCRCTrailer = 4
)

var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Checkpoint is the durable snapshot: the aggregate (a profile.Save
// image, CRC-protected on its own) plus the admission ledger and the
// WAL barrier position at snapshot time.
type Checkpoint struct {
	// Profile is the aggregate's profile.Save bytes (nil/empty when the
	// aggregate was empty and unconfigured — never written in practice).
	Profile []byte
	// Applied lists shard ids the aggregator had RESOLVED (merged, or
	// merge-failed with the loss accounted) when the snapshot was taken.
	// Replay skips their admit records; a queued-but-unresolved shard is
	// deliberately absent so its record replays.
	Applied []string
	// RefusedLoss mirrors Service.refusedLoss: shard id -> captured
	// samples standing in the aggregate's loss ledger.
	RefusedLoss map[string]uint64
	// HandoffFrom mirrors Service.handoffFrom (ledger provenance).
	HandoffFrom map[string]string
	// AppliedHandoffs holds the WAL positions (Pos.String) of handoff
	// records already folded in; replay skips them.
	AppliedHandoffs []string
	// HandoffKeys maps applied handoff envelopes' content digests to the
	// captured total each acknowledged — the duplicate-delivery dedupe
	// ledger. A donor retrying a handoff after a lost ack (even across
	// this instance's restart) is answered with the original captured
	// count instead of double-merging. Absent in old checkpoints (gob
	// decodes it nil), which only forfeits dedupe for pre-upgrade
	// envelopes.
	HandoffKeys map[string]uint64
	// Barrier is the WAL position this checkpoint covers: every record
	// below it is either in Applied/RefusedLoss/AppliedHandoffs or was
	// never acknowledged. Segments wholly below it are reclaimable.
	Barrier wal.Pos
}

// WriteCheckpoint writes ck as a PMCK envelope.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return fmt.Errorf("ingest: checkpoint encode: %w", err)
	}
	var hdr [ckptHeaderLen]byte
	copy(hdr[0:4], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], ckptVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("ingest: checkpoint write: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("ingest: checkpoint write: %w", err)
	}
	var crc [ckptCRCTrailer]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload.Bytes(), ckptCRCTable))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("ingest: checkpoint write: %w", err)
	}
	return nil
}

// ReadCheckpoint reads a PMCK envelope. Failures are typed with the
// profile package's persistence errors (ErrCorrupt / ErrTruncated /
// ErrVersionSkew) so callers classify damage the same way everywhere.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var hdr [ckptHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("ingest: checkpoint header: %w", profile.ErrTruncated)
	}
	if string(hdr[0:4]) != ckptMagic {
		return nil, fmt.Errorf("ingest: checkpoint bad magic: %w", profile.ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != ckptVersion {
		return nil, fmt.Errorf("ingest: checkpoint format v%d, this build reads v%d: %w",
			v, ckptVersion, profile.ErrVersionSkew)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > ckptMaxBytes {
		return nil, fmt.Errorf("ingest: checkpoint declared payload %d exceeds %d: %w",
			n, ckptMaxBytes, profile.ErrCorrupt)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("ingest: checkpoint payload: %w", profile.ErrTruncated)
	}
	var crcBuf [ckptCRCTrailer]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("ingest: checkpoint checksum: %w", profile.ErrTruncated)
	}
	if got, want := crc32.Checksum(payload, ckptCRCTable), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("ingest: checkpoint checksum %08x != %08x: %w", got, want, profile.ErrCorrupt)
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("ingest: checkpoint decode: %v: %w", err, profile.ErrCorrupt)
	}
	return &ck, nil
}

// LoadCheckpointFile loads a checkpoint from disk, accepting both the
// PMCK envelope and a legacy bare profile database (pre-WAL pmsimd
// checkpoints), which loads with an empty ledger. A missing file
// returns (nil, nil): a fresh start, not an error.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ingest: load checkpoint: %w", err)
	}
	if len(raw) >= 4 && string(raw[0:4]) == legacyDBMagic {
		// Validate eagerly so damage surfaces here, typed, not later.
		if _, err := profile.LoadDB(bytes.NewReader(raw)); err != nil {
			return nil, fmt.Errorf("ingest: load legacy checkpoint %s: %w", path, err)
		}
		return &Checkpoint{Profile: raw}, nil
	}
	ck, err := ReadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("ingest: load checkpoint %s: %w", path, err)
	}
	return ck, nil
}

// QuarantineCheckpoint renames a damaged checkpoint aside (path +
// ".corrupt") so a restart proceeds empty instead of crash-looping,
// keeping the bytes for forensics. Used by the daemon when
// LoadCheckpointFile reports corruption.
func QuarantineCheckpoint(path string) error {
	return os.Rename(path, path+corruptSuffix)
}
