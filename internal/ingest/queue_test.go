package ingest

import (
	"sync"
	"testing"

	"profileme/internal/core"
	"profileme/internal/profile"
)

// testShard builds a shard database with a deterministic PC mix and the
// given number of samples.
func testShard(seed uint64, samples int) *profile.DB {
	db := profile.NewDB(16, 0, 4)
	for i := 0; i < samples; i++ {
		r := core.Record{PC: 0x400 + 8*((seed+uint64(i)*3)%11), LoadComplete: -1}
		for j := range r.StageCycle {
			r.StageCycle[j] = -1
		}
		r.StageCycle[core.StageFetch] = int64(i)
		r.StageCycle[core.StageRetire] = int64(i + 9)
		r.Events = core.EvRetired
		if i%4 == 0 {
			r.Events |= core.EvDCacheMiss
		}
		db.Add(core.Sample{First: r})
	}
	return db
}

func sub(shard string, seed uint64, samples int) Submission {
	return Submission{Shard: shard, DB: testShard(seed, samples)}
}

func TestQueueRejectNew(t *testing.T) {
	q, err := NewQueue(2, RejectNew)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if dropped, res := q.Offer(sub("a", uint64(i), 5)); res != OfferAccepted || len(dropped) != 0 {
			t.Fatalf("offer %d: res=%v dropped=%d", i, res, len(dropped))
		}
	}
	// Full and closed must be distinguishable: full means retry-soon
	// (429), closed means draining (503).
	if _, res := q.Offer(sub("overflow", 9, 5)); res != OfferFull {
		t.Fatalf("full RejectNew queue: res=%v, want OfferFull", res)
	}
	st := q.Stats()
	if st.Accepted != 2 || st.Rejected != 1 || st.Dropped != 0 || st.Depth != 2 || st.HighWater != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueDropOldest(t *testing.T) {
	q, err := NewQueue(2, DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	q.Offer(Submission{Shard: "first", DB: testShard(1, 5)})
	q.Offer(Submission{Shard: "second", DB: testShard(2, 5)})
	dropped, res := q.Offer(Submission{Shard: "third", DB: testShard(3, 5)})
	if res != OfferAccepted || len(dropped) != 1 || dropped[0].Shard != "first" {
		t.Fatalf("drop-oldest: res=%v dropped=%v", res, dropped)
	}
	// FIFO order of the survivors.
	if s, ok := q.Wait(); !ok || s.Shard != "second" {
		t.Fatalf("head = %q, want second", s.Shard)
	}
	if s, ok := q.Wait(); !ok || s.Shard != "third" {
		t.Fatalf("next = %q, want third", s.Shard)
	}
	st := q.Stats()
	if st.Accepted != 3 || st.Dropped != 1 || st.Rejected != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueCloseDrainsBacklog(t *testing.T) {
	q, _ := NewQueue(4, RejectNew)
	q.Offer(sub("a", 1, 3))
	q.Offer(sub("b", 2, 3))
	q.Close()
	if _, res := q.Offer(sub("late", 3, 3)); res != OfferClosed {
		t.Fatalf("closed queue: res=%v, want OfferClosed", res)
	}
	var got []string
	for {
		s, ok := q.Wait()
		if !ok {
			break
		}
		got = append(got, s.Shard)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("backlog after close: %v", got)
	}
}

// TestQueueConcurrentOfferWait hammers the queue from many producers and
// one consumer; every accepted submission must come out exactly once.
func TestQueueConcurrentOfferWait(t *testing.T) {
	q, _ := NewQueue(8, RejectNew)
	const producers, perProducer = 8, 200

	seen := make(map[string]int)
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for {
			s, ok := q.Wait()
			if !ok {
				return
			}
			seen[s.Shard]++
		}
	}()

	var accepted sync.Map
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				name := string(rune('A'+p)) + "-" + string(rune('0'+i%10)) + string(rune('a'+(i/10)%26)) + string(rune('a'+i/260))
				if _, res := q.Offer(Submission{Shard: name, DB: testShard(uint64(i), 1)}); res == OfferAccepted {
					accepted.Store(name, true)
				}
			}
		}(p)
	}
	wg.Wait()
	q.Close()
	<-consumerDone

	var want int
	accepted.Range(func(k, _ any) bool {
		want++
		if seen[k.(string)] != 1 {
			t.Fatalf("submission %v delivered %d times", k, seen[k.(string)])
		}
		return true
	})
	var total int
	for _, n := range seen {
		total += n
	}
	if total != want {
		t.Fatalf("consumer saw %d submissions, %d were accepted", total, want)
	}
	st := q.Stats()
	if st.Accepted != uint64(want) {
		t.Fatalf("accepted counter %d, want %d", st.Accepted, want)
	}
}
