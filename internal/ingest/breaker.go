package ingest

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: calls flow through; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are short-circuited with ErrBreakerOpen until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe call is let
	// through. Success closes the breaker, failure re-opens it.
	BreakerHalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// ErrBreakerOpen reports a call short-circuited because the breaker is
// open (or a half-open probe is already in flight).
var ErrBreakerOpen = errors.New("ingest: circuit breaker open")

// BreakerStats is a snapshot of a breaker's counters.
type BreakerStats struct {
	State     string `json:"state"`
	Successes uint64 `json:"successes"`
	Failures  uint64 `json:"failures"`
	Trips     uint64 `json:"trips"`           // transitions into open
	Shorted   uint64 `json:"short_circuited"` // calls refused while open
}

// Breaker is a classic three-state circuit breaker guarding a flaky
// dependency — here, checkpoint persistence: a full disk must not stall
// the ingest hot path on every merge, so after `threshold` consecutive
// failures writes are suspended for `cooldown`, then probed half-open.
// The clock is injectable for deterministic tests.
type Breaker struct {
	mu          sync.Mutex
	state       BreakerState
	consecFails int
	probing     bool
	openedAt    time.Time

	threshold int
	cooldown  time.Duration
	now       func() time.Time

	stats BreakerStats
}

// NewBreaker builds a closed breaker that opens after threshold
// consecutive failures and probes again after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Do runs f under the breaker's admission rules and returns f's error,
// or ErrBreakerOpen when the call was short-circuited.
func (b *Breaker) Do(f func() error) error {
	b.mu.Lock()
	switch b.state {
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.stats.Shorted++
			b.mu.Unlock()
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
	case BreakerHalfOpen:
		if b.probing {
			b.stats.Shorted++
			b.mu.Unlock()
			return ErrBreakerOpen
		}
		b.probing = true
	}
	wasHalfOpen := b.state == BreakerHalfOpen
	b.mu.Unlock()

	err := f()

	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err != nil {
		b.stats.Failures++
		b.consecFails++
		if wasHalfOpen || b.consecFails >= b.threshold {
			if b.state != BreakerOpen {
				b.stats.Trips++
			}
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
		return err
	}
	b.stats.Successes++
	b.consecFails = 0
	b.state = BreakerClosed
	return nil
}

// State returns the breaker's current position, promoting open to
// half-open when the cooldown has elapsed (so readiness probes see the
// recovering state without having to issue a write).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Stats returns a snapshot of the counters.
func (b *Breaker) Stats() BreakerStats {
	st := func() BreakerStats {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.stats
	}()
	st.State = b.State().String()
	return st
}
