// Package counters models the conventional performance-counter hardware
// ProfileMe argues against (§2.2): free-running event counters that raise
// an interrupt when they overflow. The PC delivered to the interrupt
// handler is whatever instruction the processor happens to be at when the
// interrupt is finally recognized — several cycles after the event — so
// events are attributed to the wrong instructions: a fixed skew on an
// in-order machine, a wide smear on an out-of-order one (Figure 2).
package counters

import (
	"fmt"

	"profileme/internal/stats"
)

// EventType enumerates countable hardware events.
type EventType uint8

// Countable events.
const (
	EventDCacheRef EventType = iota
	EventDCacheMiss
	EventICacheMiss
	EventBranchMispredict
	EventRetired
	NumEventTypes = iota
)

var eventTypeNames = [...]string{
	"dcache-ref", "dcache-miss", "icache-miss", "branch-mispredict", "retired",
}

// String returns the event name.
func (t EventType) String() string {
	if int(t) < len(eventTypeNames) {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// Config parameterizes the counter unit.
type Config struct {
	// Monitor is the event whose overflow raises interrupts.
	Monitor EventType
	// Period is the overflow period: one interrupt per Period monitored
	// events. 0 disables overflow interrupts (aggregate counting only).
	Period uint64
	// Skid is the number of cycles between counter overflow and the
	// interrupt being recognized (interrupt-delivery latency through the
	// pipeline). During the skid the machine keeps executing, which is
	// precisely what displaces the attributed PC.
	Skid int64
	// SkidJitter adds a uniform 0..SkidJitter cycles to each skid.
	// In-order machines of the era (21164) recognize counter interrupts
	// pipeline-synchronously — a fixed skid — while out-of-order parts
	// (Pentium Pro) deliver them through an asynchronous interrupt
	// interface whose recognition cycle varies by several cycles; at 3-4
	// retired instructions per cycle that variation is what smears the
	// attributed PC over ~25 instructions in the paper's Figure 2.
	SkidJitter int64
	// Seed seeds the jitter generator.
	Seed uint64
}

// Unit is a set of aggregate event counters plus overflow-interrupt logic
// for one monitored event.
type Unit struct {
	cfg      Config
	counts   [NumEventTypes]uint64
	since    uint64
	pendAt   int64 // cycle at which a pending interrupt is recognized; -1 none
	handler  func(pc uint64)
	delivers uint64
	rng      *stats.RNG
}

// New returns a Unit delivering interrupt PCs to handler (which may be nil
// for aggregate-only use).
func New(cfg Config, handler func(pc uint64)) *Unit {
	return &Unit{cfg: cfg, pendAt: -1, handler: handler, rng: stats.NewRNG(cfg.Seed | 1)}
}

// Event counts one occurrence of t at the given cycle, arming an overflow
// interrupt when the monitored counter reaches its period.
func (u *Unit) Event(t EventType, cycle int64) {
	u.counts[t]++
	if u.cfg.Period == 0 || t != u.cfg.Monitor {
		return
	}
	u.since++
	if u.since >= u.cfg.Period && u.pendAt < 0 {
		u.since = 0
		u.pendAt = cycle + u.cfg.Skid
		if u.cfg.SkidJitter > 0 {
			u.pendAt += int64(u.rng.Intn(int(u.cfg.SkidJitter) + 1))
		}
	}
}

// Tick must be called once per cycle with the PC the interrupt handler
// would observe if an interrupt were recognized now (on a real machine:
// the restart PC — the oldest unretired instruction). It returns true when
// an interrupt was delivered this cycle.
func (u *Unit) Tick(cycle int64, pc uint64) bool {
	if u.pendAt < 0 || cycle < u.pendAt {
		return false
	}
	u.pendAt = -1
	u.delivers++
	if u.handler != nil {
		u.handler(pc)
	}
	return true
}

// Count returns the aggregate count for t.
func (u *Unit) Count(t EventType) uint64 { return u.counts[t] }

// Delivered returns the number of overflow interrupts delivered.
func (u *Unit) Delivered() uint64 { return u.delivers }

// Config returns the unit's configuration.
func (u *Unit) Config() Config { return u.cfg }
