package counters

import "testing"

func TestAggregateCounting(t *testing.T) {
	u := New(Config{}, nil)
	u.Event(EventDCacheRef, 0)
	u.Event(EventDCacheRef, 1)
	u.Event(EventDCacheMiss, 1)
	if u.Count(EventDCacheRef) != 2 || u.Count(EventDCacheMiss) != 1 {
		t.Fatalf("counts wrong")
	}
	if u.Count(EventRetired) != 0 {
		t.Fatal("unused counter nonzero")
	}
}

func TestOverflowInterruptWithSkid(t *testing.T) {
	var got []uint64
	u := New(Config{Monitor: EventDCacheRef, Period: 2, Skid: 6},
		func(pc uint64) { got = append(got, pc) })

	u.Event(EventDCacheRef, 10)
	if u.Tick(10, 0x100) {
		t.Fatal("interrupt before overflow")
	}
	u.Event(EventDCacheRef, 11) // overflow at 11, recognized at 17
	for c := int64(11); c < 17; c++ {
		if u.Tick(c, 0x200) {
			t.Fatalf("interrupt recognized early at %d", c)
		}
	}
	if !u.Tick(17, 0x300) {
		t.Fatal("interrupt not recognized at skid expiry")
	}
	if len(got) != 1 || got[0] != 0x300 {
		t.Fatalf("delivered PCs = %v", got)
	}
	if u.Delivered() != 1 {
		t.Fatal("delivery count")
	}
}

func TestOnlyMonitoredEventOverflows(t *testing.T) {
	u := New(Config{Monitor: EventDCacheMiss, Period: 1, Skid: 0}, func(uint64) {})
	u.Event(EventDCacheRef, 5)
	if u.Tick(5, 0) {
		t.Fatal("non-monitored event raised interrupt")
	}
	u.Event(EventDCacheMiss, 6)
	if !u.Tick(6, 0) {
		t.Fatal("monitored event did not raise interrupt")
	}
}

func TestNoDoubleArmWhilePending(t *testing.T) {
	u := New(Config{Monitor: EventRetired, Period: 1, Skid: 10}, func(uint64) {})
	u.Event(EventRetired, 0) // arms, recognized at 10
	u.Event(EventRetired, 1) // while pending: counted but not re-armed
	n := 0
	for c := int64(0); c < 30; c++ {
		if u.Tick(c, 0) {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("delivered %d interrupts", n)
	}
	if u.Count(EventRetired) != 2 {
		t.Fatal("aggregate count lost")
	}
}

func TestPeriodZeroNeverInterrupts(t *testing.T) {
	u := New(Config{Monitor: EventRetired, Period: 0, Skid: 0}, func(uint64) {
		t.Fatal("handler called")
	})
	for i := int64(0); i < 100; i++ {
		u.Event(EventRetired, i)
		u.Tick(i, 0)
	}
}

func TestEventTypeString(t *testing.T) {
	if EventDCacheRef.String() != "dcache-ref" || EventRetired.String() != "retired" {
		t.Fatal("names wrong")
	}
}

func TestSkidJitterVariesRecognition(t *testing.T) {
	delays := map[int64]bool{}
	u := New(Config{Monitor: EventRetired, Period: 1, Skid: 6, SkidJitter: 8, Seed: 3},
		func(uint64) {})
	cycle := int64(0)
	for i := 0; i < 200; i++ {
		u.Event(EventRetired, cycle)
		armed := cycle
		for !u.Tick(cycle, 0) {
			cycle++
		}
		delays[cycle-armed] = true
		cycle++
	}
	if len(delays) < 4 {
		t.Fatalf("jitter produced only %d distinct delays", len(delays))
	}
	for d := range delays {
		if d < 6 || d > 14 {
			t.Fatalf("delay %d outside skid+jitter range", d)
		}
	}
}
