package mem

// Config describes a full memory hierarchy. The defaults (see
// DefaultConfig) are sized like the Alpha 21264's on-chip caches backed by
// a board-level cache.
type Config struct {
	ICache CacheConfig
	DCache CacheConfig
	L2     CacheConfig

	TLBEntries int
	PageBytes  int

	L2Latency  int // additional cycles for an L1 miss that hits in L2
	MemLatency int // additional cycles for an L2 miss
	TLBPenalty int // cycles for a software TLB fill
}

// DefaultConfig returns the 21264-flavoured hierarchy used throughout the
// experiments: 64 KB 2-way L1s, 1 MB 8-way L2, 128-entry TLBs, 8 KB pages.
func DefaultConfig() Config {
	return Config{
		ICache:     CacheConfig{Name: "icache", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLatency: 1},
		DCache:     CacheConfig{Name: "dcache", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLatency: 3},
		L2:         CacheConfig{Name: "l2", SizeBytes: 1 << 20, LineBytes: 64, Assoc: 8, HitLatency: 12},
		TLBEntries: 128,
		PageBytes:  8 << 10,
		L2Latency:  12,
		MemLatency: 80,
		TLBPenalty: 30,
	}
}

// Result describes what happened on one access: the total latency in
// cycles and which miss events occurred. The event bits map one-to-one
// onto ProfileMe event-register bits.
type Result struct {
	Latency int
	L1Miss  bool
	L2Miss  bool
	TLBMiss bool
}

// Hierarchy glues the caches and TLBs together and charges latencies.
type Hierarchy struct {
	cfg    Config
	icache *Cache
	dcache *Cache
	l2     *Cache
	itlb   *TLB
	dtlb   *TLB
}

// NewHierarchy builds the hierarchy described by cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg:    cfg,
		icache: NewCache(cfg.ICache),
		dcache: NewCache(cfg.DCache),
		l2:     NewCache(cfg.L2),
		itlb:   NewTLB(cfg.TLBEntries, cfg.PageBytes),
		dtlb:   NewTLB(cfg.TLBEntries, cfg.PageBytes),
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// ICache returns the instruction cache (read-only introspection).
func (h *Hierarchy) ICache() *Cache { return h.icache }

// DCache returns the data cache (read-only introspection).
func (h *Hierarchy) DCache() *Cache { return h.dcache }

// L2 returns the unified second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Fetch performs an instruction fetch at pc and returns the outcome.
func (h *Hierarchy) Fetch(pc uint64) Result {
	return h.access(h.itlb, h.icache, pc)
}

// Data performs a data access at addr and returns the outcome. Stores and
// loads are treated alike for tag state (write-allocate).
func (h *Hierarchy) Data(addr uint64) Result {
	return h.access(h.dtlb, h.dcache, addr)
}

func (h *Hierarchy) access(tlb *TLB, l1 *Cache, addr uint64) Result {
	var r Result
	if !tlb.Access(addr) {
		r.TLBMiss = true
		r.Latency += h.cfg.TLBPenalty
	}
	r.Latency += l1.Config().HitLatency
	if l1.Access(addr) {
		return r
	}
	r.L1Miss = true
	r.Latency += h.cfg.L2Latency
	if h.l2.Access(addr) {
		return r
	}
	r.L2Miss = true
	r.Latency += h.cfg.MemLatency
	return r
}
