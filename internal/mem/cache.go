// Package mem models the memory hierarchy the timing pipeline charges
// latencies against: set-associative L1 instruction and data caches, a
// unified L2, and instruction/data TLBs. Tag state only — data values live
// in the functional simulator. The hierarchy reports, for every access,
// the latency and which miss events occurred; those events are exactly the
// I-cache/D-cache/TLB miss bits a ProfileMe record captures.
package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Assoc      int
	HitLatency int // cycles charged on a hit at this level
}

// Validate reports a configuration problem, or nil.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0:
		return fmt.Errorf("mem: %s: non-positive geometry", c.Name)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: %s: line size %d not a power of two", c.Name, c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("mem: %s: size %d not divisible by assoc*line", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64 // last-touch stamp; larger is more recent
}

// Cache is a set-associative cache with LRU replacement. Not safe for
// concurrent use.
type Cache struct {
	cfg       CacheConfig
	sets      [][]line
	setMask   uint64
	lineShift uint
	stamp     uint64

	accesses uint64
	misses   uint64
}

// NewCache returns an empty cache. It panics on an invalid configuration
// (configurations are static program data, not runtime input).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	sets := make([][]line, numSets)
	backing := make([]line, numSets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(numSets - 1), lineShift: shift}
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) set(addr uint64) ([]line, uint64) {
	blk := addr >> c.lineShift
	return c.sets[blk&c.setMask], blk
}

// Access looks up addr, filling the line on a miss (allocate-on-miss for
// both reads and writes). It returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	c.stamp++
	set, tag := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			return true
		}
	}
	// Victim: first invalid way, else least recently used.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	c.misses++
	set[victim] = line{tag: tag, valid: true, lru: c.stamp}
	return false
}

// Probe reports whether addr currently hits, without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// SetIndex returns the set number addr maps to, for conflict analysis
// (the examples/memtuning scenario groups sampled miss addresses by set).
func (c *Cache) SetIndex(addr uint64) uint64 {
	return (addr >> c.lineShift) & c.setMask
}

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() {
	for _, s := range c.sets {
		for i := range s {
			s[i] = line{}
		}
	}
}

// Stats returns cumulative accesses and misses.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRate returns misses/accesses, or 0 when idle.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// TLB is a fully-associative translation buffer with LRU replacement over
// page numbers.
type TLB struct {
	entries   []tlbEntry
	pageShift uint
	stamp     uint64
	accesses  uint64
	misses    uint64
}

type tlbEntry struct {
	page  uint64
	valid bool
	lru   uint64
}

// NewTLB returns a TLB with the given number of entries and page size.
// It panics when pageBytes is not a power of two or entries is not
// positive.
func NewTLB(entries int, pageBytes int) *TLB {
	if entries <= 0 || pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("mem: bad TLB geometry: %d entries, %d-byte pages", entries, pageBytes))
	}
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	return &TLB{entries: make([]tlbEntry, entries), pageShift: shift}
}

// Access translates addr, filling on a miss. It returns true on a hit.
func (t *TLB) Access(addr uint64) bool {
	t.accesses++
	t.stamp++
	page := addr >> t.pageShift
	victim := 0
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].page == page {
			t.entries[i].lru = t.stamp
			return true
		}
	}
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.misses++
	t.entries[victim] = tlbEntry{page: page, valid: true, lru: t.stamp}
	return false
}

// Page returns the page number of addr.
func (t *TLB) Page(addr uint64) uint64 { return addr >> t.pageShift }

// Stats returns cumulative accesses and misses.
func (t *TLB) Stats() (accesses, misses uint64) { return t.accesses, t.misses }
