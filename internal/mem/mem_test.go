package mem

import (
	"testing"
	"testing/quick"

	"profileme/internal/stats"
)

func smallCache() *Cache {
	return NewCache(CacheConfig{Name: "t", SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitLatency: 1})
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0x100) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x100) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x13f) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x140) {
		t.Fatal("next line should miss")
	}
	acc, miss := c.Stats()
	if acc != 4 || miss != 2 {
		t.Fatalf("stats = %d/%d", miss, acc)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1024 B, 64 B lines, 2-way => 8 sets. Addresses 512 B apart share a set.
	c := smallCache()
	const stride = 512
	a, b, d := uint64(0), uint64(stride), uint64(2*stride)
	c.Access(a) // miss, fill way0
	c.Access(b) // miss, fill way1
	c.Access(a) // hit, a most recent
	c.Access(d) // miss, evicts b (LRU)
	if !c.Access(a) {
		t.Fatal("a should still be resident")
	}
	if c.Access(b) {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheProbeDoesNotFill(t *testing.T) {
	c := smallCache()
	if c.Probe(0x40) {
		t.Fatal("probe hit on empty cache")
	}
	if c.Access(0x40) {
		t.Fatal("access after probe should still miss")
	}
	if !c.Probe(0x40) {
		t.Fatal("probe should hit after fill")
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	c := smallCache()
	c.Access(0x80)
	c.InvalidateAll()
	if c.Probe(0x80) {
		t.Fatal("line survived invalidate")
	}
}

func TestCacheSetIndex(t *testing.T) {
	c := smallCache() // 8 sets, 64B lines
	if c.SetIndex(0) != 0 || c.SetIndex(64) != 1 || c.SetIndex(512) != 0 {
		t.Fatal("set index math wrong")
	}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{Name: "a", SizeBytes: 0, LineBytes: 64, Assoc: 2},
		{Name: "b", SizeBytes: 1024, LineBytes: 48, Assoc: 2},
		{Name: "c", SizeBytes: 1000, LineBytes: 64, Assoc: 2},
		{Name: "d", SizeBytes: 64 * 2 * 3, LineBytes: 64, Assoc: 2}, // 3 sets
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", cfg.Name)
		}
	}
	good := CacheConfig{Name: "g", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLatency: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// A working set smaller than the cache reaches a 100% steady-state
	// hit rate; one larger than the cache with a marching access pattern
	// misses every line.
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 4096, LineBytes: 64, Assoc: 4, HitLatency: 1})
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			hit := c.Access(addr)
			if pass > 0 && !hit {
				t.Fatalf("pass %d: addr %#x missed in fitting working set", pass, addr)
			}
		}
	}

	big := NewCache(CacheConfig{Name: "t2", SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitLatency: 1})
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			if big.Access(addr) && pass > 0 {
				// LRU with a sequential sweep over 4x capacity never hits.
				t.Fatalf("pass %d: addr %#x unexpectedly hit", pass, addr)
			}
		}
	}
}

func TestCacheMissRate(t *testing.T) {
	c := smallCache()
	if c.MissRate() != 0 {
		t.Fatal("idle miss rate nonzero")
	}
	c.Access(0x0)
	c.Access(0x0)
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v", got)
	}
}

func TestCachePropertyProbeConsistentWithAccess(t *testing.T) {
	// After Access(a), Probe(a) must hit until >= assoc distinct
	// conflicting lines are accessed.
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		c := smallCache()
		addrs := make([]uint64, 200)
		for i := range addrs {
			addrs[i] = uint64(r.Intn(1 << 14))
		}
		for _, a := range addrs {
			c.Access(a)
			if !c.Probe(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(4, 8192)
	if tlb.Access(0) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(8191) {
		t.Fatal("same page missed")
	}
	if tlb.Access(8192) {
		t.Fatal("next page hit")
	}
	if tlb.Page(8192) != 1 {
		t.Fatal("page number wrong")
	}
}

func TestTLBLRU(t *testing.T) {
	tlb := NewTLB(2, 4096)
	tlb.Access(0 * 4096)
	tlb.Access(1 * 4096)
	tlb.Access(0 * 4096) // page 0 most recent
	tlb.Access(2 * 4096) // evicts page 1
	if !tlb.Access(0) {
		t.Fatal("page 0 evicted")
	}
	if tlb.Access(1 * 4096) {
		t.Fatal("page 1 survived")
	}
}

func TestTLBPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad TLB geometry accepted")
		}
	}()
	NewTLB(4, 3000)
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)

	// Cold access: TLB miss + L1 miss + L2 miss.
	r := h.Data(0x10000)
	if !r.TLBMiss || !r.L1Miss || !r.L2Miss {
		t.Fatalf("cold access events = %+v", r)
	}
	want := cfg.TLBPenalty + cfg.DCache.HitLatency + cfg.L2Latency + cfg.MemLatency
	if r.Latency != want {
		t.Fatalf("cold latency = %d, want %d", r.Latency, want)
	}

	// Warm access: everything hits.
	r = h.Data(0x10000)
	if r.TLBMiss || r.L1Miss || r.L2Miss {
		t.Fatalf("warm access events = %+v", r)
	}
	if r.Latency != cfg.DCache.HitLatency {
		t.Fatalf("warm latency = %d", r.Latency)
	}
}

func TestHierarchyL2HitPath(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	h.Data(0x2000) // fill everything

	// Evict the L1 line by walking addresses that map to its set while
	// staying inside L2. L1 is 64KB 2-way: lines 32KB apart conflict.
	for i := 1; i <= 4; i++ {
		h.Data(0x2000 + uint64(i)*32<<10)
	}
	r := h.Data(0x2000)
	if !r.L1Miss || r.L2Miss {
		t.Fatalf("expected L1 miss, L2 hit: %+v", r)
	}
	if r.Latency != cfg.DCache.HitLatency+cfg.L2Latency {
		t.Fatalf("L2-hit latency = %d", r.Latency)
	}
}

func TestHierarchyFetchSeparateFromData(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Fetch(0x4000)
	// Data access to the same address must still cold-miss: separate L1s
	// (but shares L2, so only the L1/D-TLB miss).
	r := h.Data(0x4000)
	if !r.L1Miss {
		t.Fatal("D-cache should not be warmed by I-fetch")
	}
	if r.L2Miss {
		t.Fatal("L2 is unified; the fetch should have warmed it")
	}
}

func TestHierarchyDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	for _, cc := range []CacheConfig{cfg.ICache, cfg.DCache, cfg.L2} {
		if err := cc.Validate(); err != nil {
			t.Errorf("default %s invalid: %v", cc.Name, err)
		}
	}
}
