package mem

import "testing"

func BenchmarkCacheAccessHit(b *testing.B) {
	c := NewCache(DefaultConfig().DCache)
	c.Access(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000)
	}
}

func BenchmarkCacheAccessMissStream(b *testing.B) {
	c := NewCache(DefaultConfig().DCache)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64)
	}
}

func BenchmarkHierarchyData(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Data(uint64(i%4096) * 8)
	}
}
